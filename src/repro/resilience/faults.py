"""Deterministic fault injection for chaos testing.

Recovery code that is never exercised is broken code waiting for an
outage. This module injects the faults the resilience layer claims to
survive — and injects them *deterministically*, so a chaos test can
assert exact recovery behavior (which rows were quarantined, which
stage the resume skipped) instead of hoping:

* :class:`FaultInjector` — raises a :class:`SimulatedCrash` at a
  configured stage boundary, emulating a kill between a checkpoint
  write and the next stage;
* :func:`corrupt_csv_rows` — seeded corruption of a fraction of a CSV
  corpus's data rows (the required ``book_id`` cell is made
  unparseable, guaranteeing a quarantine entry);
* :func:`truncate_file` — chops a checkpoint (or any artifact) so
  integrity checks must detect the damage;
* :func:`exhausting_budget` — a budget that exhausts immediately, for
  degraded-mode assertions;
* :class:`WorkerCrashPlan` / :func:`kill_current_worker` — abrupt death
  of one process-pool worker mid-chunk, so the parallel layer's
  deterministic chunk retry (``docs/PARALLELISM.md``) is exercised, not
  assumed;
* :class:`WorkerHangPlan` / :func:`hang_worker` — one worker stalls
  instead of dying, so the executor's per-chunk ``timeout`` must
  convert the hang into the same lost-chunk in-process retry.

All randomness flows from an explicit seed (``@seeded``); the same seed
always corrupts the same rows.
"""

from __future__ import annotations

import csv
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.contracts import impure, seeded
from repro.resilience.budgets import StageBudget

__all__ = [
    "SimulatedCrash",
    "FaultPlan",
    "FaultInjector",
    "WorkerCrashPlan",
    "WorkerHangPlan",
    "kill_current_worker",
    "hang_worker",
    "corrupt_csv_rows",
    "truncate_file",
    "exhausting_budget",
]

#: Exit code a killed pool worker dies with; distinctive in core dumps
#: and chaos logs, never produced by a healthy worker.
WORKER_KILL_EXIT_CODE = 23

#: The marker written into a corrupted ``book_id`` cell; intentionally
#: not an integer so ingestion must reject (or quarantine) the row.
CORRUPT_MARKER = "corrupt!"


class SimulatedCrash(RuntimeError):
    """An injected mid-run crash (stands in for kill -9 / OOM / reboot)."""

    def __init__(self, stage: str) -> None:
        super().__init__(f"simulated crash after stage {stage!r}")
        self.stage = stage


@dataclass(frozen=True)
class FaultPlan:
    """Which faults an injector should fire, and where."""

    crash_after_stage: Optional[str] = None


class FaultInjector:
    """Fires planned faults at pipeline-declared injection points.

    The pipeline calls :meth:`after_stage` once per completed stage
    (after its checkpoint is durable); with no plan the call is a no-op,
    so production runs pay nothing. ``fired`` records what actually
    triggered, letting tests assert the fault really happened.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.fired: List[str] = []

    def after_stage(self, stage: str) -> None:
        """Injection point: the pipeline just finished ``stage``."""
        if stage == self.plan.crash_after_stage:
            self.fired.append(f"crash:{stage}")
            raise SimulatedCrash(stage)


@dataclass
class WorkerCrashPlan:
    """Kill one process-pool worker mid-chunk, exactly once.

    Targets the ``chunk``-th chunk of the ``map_call``-th parallel
    dispatch of a
    :class:`~repro.parallel.executor.MultiprocessExecutor`. When the
    targeted chunk is submitted, the executor sends
    :func:`kill_current_worker` to the pool instead of the real work;
    the worker dies abruptly, the pool breaks, and the executor's
    deterministic in-process retry must reproduce the lost results.
    ``fired`` records whether the fault actually triggered, so chaos
    tests can assert the kill happened rather than silently passing on
    a run that never dispatched in parallel.
    """

    map_call: int = 0
    chunk: int = 0
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.map_call < 0 or self.chunk < 0:
            raise ValueError(
                f"map_call and chunk must be >= 0, got "
                f"({self.map_call}, {self.chunk})"
            )

    def should_kill(self, map_call: int, chunk: int) -> bool:
        """True exactly once, when the targeted dispatch point is reached."""
        if self.fired:
            return False
        if map_call == self.map_call and chunk == self.chunk:
            self.fired = True
            return True
        return False


@dataclass
class WorkerHangPlan:
    """Stall one process-pool worker mid-chunk, exactly once.

    The hung sibling of :class:`WorkerCrashPlan`: when the targeted
    chunk of the targeted dispatch is submitted, the executor sends
    :func:`hang_worker` to the pool in place of the real work. The
    worker never returns within the executor's per-chunk ``timeout``,
    the chunk is declared lost, and the executor recomputes it
    in-process with the *real* function — a deterministic outcome from
    a nondeterministic failure. ``seconds`` bounds how long the stuck
    worker lingers (it must comfortably exceed the timeout under test,
    but short enough that pool teardown at interpreter exit stays
    cheap).
    """

    map_call: int = 0
    chunk: int = 0
    seconds: float = 5.0
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.map_call < 0 or self.chunk < 0:
            raise ValueError(
                f"map_call and chunk must be >= 0, got "
                f"({self.map_call}, {self.chunk})"
            )
        if self.seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {self.seconds}")

    def should_hang(self, map_call: int, chunk: int) -> bool:
        """True exactly once, when the targeted dispatch point is reached."""
        if self.fired:
            return False
        if map_call == self.map_call and chunk == self.chunk:
            self.fired = True
            return True
        return False


@impure(reason="blocks the executing worker for a bounded wall-clock "
               "interval (chaos fault)")
def hang_worker(seconds: float) -> None:
    """Emulate a wedged worker (deadlock, NFS stall, runaway regex).

    Unlike :func:`kill_current_worker` the process stays alive and the
    pool stays healthy — only this one future never completes in time.
    Module-level so it pickles into a worker task.
    """
    time.sleep(seconds)


@impure(reason="terminates the executing process abruptly (chaos fault)")
def kill_current_worker() -> None:
    """Emulate ``kill -9`` / OOM of the executing pool worker.

    ``os._exit`` skips interpreter cleanup entirely, which is the shape
    of death a real kill produces: no result, no exception pickled back,
    just a broken pipe the parent pool must notice. Module-level so it
    pickles into a worker task.
    """
    os._exit(WORKER_KILL_EXIT_CODE)


@seeded(param="seed")
def corrupt_csv_rows(
    source: Union[str, Path],
    destination: Union[str, Path],
    fraction: float,
    seed: int,
) -> List[int]:
    """Copy a CSV corpus, corrupting a seeded sample of its data rows.

    Returns the 1-based file line numbers of the corrupted rows (the
    header is line 1), sorted — exactly the set a quarantining read is
    expected to report. At least one row is corrupted whenever
    ``fraction > 0`` and data rows exist.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    with open(source, newline="", encoding="utf-8") as handle:
        rows = list(csv.reader(handle))
    if not rows:
        raise ValueError(f"{source}: empty CSV")
    header, data = rows[0], rows[1:]
    n_corrupt = 0
    if fraction > 0 and data:
        n_corrupt = max(1, round(len(data) * fraction))
    rng = random.Random(seed)
    chosen = sorted(rng.sample(range(len(data)), n_corrupt))
    for index in chosen:
        # Breaking the required identity column guarantees the row
        # cannot be parsed *or repaired* — it must land in quarantine.
        data[index][0] = CORRUPT_MARKER
    with open(destination, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(data)
    return [index + 2 for index in chosen]


def truncate_file(path: Union[str, Path], keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to a fraction of its bytes; returns bytes kept.

    Keeping a strict prefix of a JSON document guarantees it no longer
    parses, which is the torn-write shape a real crash produces.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(
            f"keep_fraction must be in [0, 1), got {keep_fraction}"
        )
    data = Path(path).read_bytes()
    kept = int(len(data) * keep_fraction)
    Path(path).write_bytes(data[:kept])
    return kept


def exhausting_budget() -> StageBudget:
    """A budget that allows one unit of work — forces degraded mode."""
    return StageBudget(max_iterations=1)
