"""Chaos harness: seeded fault injection against the live pipeline.

Resilience claims that are not exercised are hopes, not properties.
This module drives the whole resilience layer end to end with
deterministically seeded faults and asserts the recovery invariants of
``docs/RESILIENCE.md``:

``corrupt-rows``
    Inject :data:`~repro.resilience.faults.CORRUPT_MARKER` rows into a
    CSV corpus at a seeded 5% (configurable) and require that ingestion
    under ``QuarantinePolicy.QUARANTINE`` (a) completes, (b) loads
    exactly the clean rows, and (c) quarantines **exactly** the
    injected line numbers.

``crash-resume``
    For every stage boundary in turn, crash the pipeline with a
    :class:`~repro.resilience.faults.SimulatedCrash` right after the
    stage's checkpoint is durable, resume from disk, and require the
    resumed ranked CSV to be **byte-identical** to an uninterrupted
    run's.

``truncated-checkpoint``
    Truncate one checkpoint file (stage chosen by the fault seed) and
    delete the deeper ones, then resume: the store must record a miss
    for the damaged stage, fall back to the deepest intact ancestor,
    and still reproduce the uninterrupted bytes.

``budget``
    Run under an instantly exhausted
    :class:`~repro.resilience.budgets.StageBudget` and require graceful
    degradation: the run completes, ``ResolutionResult.degraded`` is
    set, and the run report carries the flag.

``worker-crash``
    Kill one process-pool worker mid-chunk (the seed picks which
    parallel dispatch dies) and require that the executor's
    deterministic chunk retry reproduces output **byte-identical** to a
    serial run — the parallel layer's recovery invariant
    (``docs/PARALLELISM.md``).

``crash-mid-batch``
    Stream the second half of the corpus into a WAL-backed
    :class:`~repro.core.incremental.IncrementalResolver` (batch size
    varies with the seed) and kill the process at **every** WAL append
    boundary in turn. Recovery must replay exactly the committed
    prefix, report exactly the batches a crash legitimately loses (one
    after a ``begin``, none after a ``commit``), and — once the dropped
    batches are re-ingested — reproduce the uninterrupted ranked CSV
    **byte-identically**.

``torn-wal``
    Truncate the live WAL segment at **every** byte offset inside its
    final record (the last batch's commit marker), as a torn write
    would. Every tear must scan down to the same committed prefix with
    the last batch reported dropped; full recoveries at sampled tear
    points must re-ingest to byte-identical output.

Faults are injected *deterministically* from ``--seed``, so a failing
scenario replays exactly. On failure the harness keeps its artifacts
(quarantine JSONL, output diffs, checkpoint directories) for posthoc
debugging — CI uploads them; locally the path is printed.

Usage: ``repro chaos --seed 0,1,2`` or ``python -m
repro.resilience.chaos``. Exit codes: 0 all invariants held, 1 a
scenario failed, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import difflib
import shutil
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.contracts import impure
from repro.core import PipelineConfig, UncertainERPipeline
from repro.core.incremental import IncrementalResolver
from repro.core.pipeline import PIPELINE_STAGES
from repro.core.resolution import ResolutionResult
from repro.datagen import build_corpus
from repro.obs import Tracer
from repro.parallel.executor import MultiprocessExecutor
from repro.records.dataset import Dataset
from repro.records.io import read_csv, write_csv
from repro.records.schema import VictimRecord
from repro.resilience.budgets import StageBudget
from repro.resilience.checkpoints import CheckpointStore
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    WorkerCrashPlan,
    corrupt_csv_rows,
    truncate_file,
)
from repro.resilience.quarantine import Quarantine, QuarantinePolicy
from repro.resilience.wal import WalFaultPlan, WriteAheadLog

__all__ = [
    "ChaosConfig",
    "ScenarioOutcome",
    "SCENARIOS",
    "run_chaos",
    "main",
]


@dataclass(frozen=True)
class ChaosConfig:
    """Which faults to inject, against what corpus."""

    seeds: Tuple[int, ...] = (0,)
    scenario: str = "all"
    persons: int = 40
    corpus_seed: int = 17
    ng: float = 3.5
    corrupt_fraction: float = 0.05
    artifacts_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("need at least one fault seed")
        if self.persons < 2:
            raise ValueError(f"persons must be >= 2, got {self.persons}")
        if not 0.0 < self.corrupt_fraction <= 1.0:
            raise ValueError(
                f"corrupt_fraction must be in (0, 1], "
                f"got {self.corrupt_fraction}"
            )
        if self.scenario not in ("all", *SCENARIOS):
            raise ValueError(f"unknown scenario: {self.scenario!r}")


@dataclass(frozen=True)
class ScenarioOutcome:
    """Pass/fail of one (scenario, seed) combination."""

    scenario: str
    seed: int
    ok: bool
    detail: str


def _build_dataset(config: ChaosConfig) -> Dataset:
    dataset, _persons = build_corpus(
        n_persons=config.persons,
        communities=("italy",),
        seed=config.corpus_seed,
        name="chaos",
    )
    return dataset


def _pipeline_config(config: ChaosConfig) -> PipelineConfig:
    return PipelineConfig(ng=config.ng, expert_weighting=True)


def _ranked_bytes(resolution: ResolutionResult, path: Path) -> bytes:
    """Write the ranked CSV (the determinism artifact) and read it back."""
    resolution.to_csv(path)
    return path.read_bytes()


def _diff(expected: bytes, actual: bytes, label: str) -> str:
    return "".join(
        difflib.unified_diff(
            expected.decode("utf-8").splitlines(keepends=True),
            actual.decode("utf-8").splitlines(keepends=True),
            fromfile="uninterrupted",
            tofile=label,
        )
    )


@impure(reason="writes corrupted corpus and quarantine artifacts to disk")
def _scenario_corrupt_rows(
    config: ChaosConfig, seed: int, workdir: Path
) -> ScenarioOutcome:
    """Seeded corrupt rows must be quarantined exactly, never fatally."""
    dataset = _build_dataset(config)
    clean_path = workdir / "corpus.csv"
    corrupt_path = workdir / "corpus-corrupted.csv"
    write_csv(dataset, clean_path)
    injected = corrupt_csv_rows(
        clean_path, corrupt_path, config.corrupt_fraction, seed
    )

    quarantine = Quarantine()
    loaded = read_csv(
        corrupt_path, policy=QuarantinePolicy.QUARANTINE,
        quarantine=quarantine,
    )
    quarantine.to_jsonl(workdir / f"quarantine-seed{seed}.jsonl")
    resolution = UncertainERPipeline(_pipeline_config(config)).run(loaded)

    quarantined = quarantine.line_numbers()
    if quarantined != injected:
        return ScenarioOutcome(
            "corrupt-rows", seed, False,
            f"quarantined lines {quarantined} != injected {injected}",
        )
    if len(loaded) != len(dataset) - len(injected):
        return ScenarioOutcome(
            "corrupt-rows", seed, False,
            f"loaded {len(loaded)} records, expected "
            f"{len(dataset) - len(injected)}",
        )
    return ScenarioOutcome(
        "corrupt-rows", seed, True,
        f"{len(injected)} rows quarantined exactly; "
        f"{len(resolution)} pairs resolved from the remainder",
    )


@impure(reason="kills and resumes pipeline runs via on-disk checkpoints")
def _scenario_crash_resume(
    config: ChaosConfig, seed: int, workdir: Path
) -> ScenarioOutcome:
    """Crash after every stage in turn; resume must reproduce the bytes."""
    dataset = _build_dataset(config)
    pipeline_config = _pipeline_config(config)
    fresh = UncertainERPipeline(pipeline_config).run(dataset)
    expected = _ranked_bytes(fresh, workdir / "uninterrupted.csv")

    for stage in PIPELINE_STAGES:
        store_dir = workdir / f"checkpoints-{stage}"
        try:
            UncertainERPipeline(pipeline_config).run(
                dataset,
                checkpoints=CheckpointStore(store_dir),
                faults=FaultInjector(FaultPlan(crash_after_stage=stage)),
            )
            return ScenarioOutcome(
                "crash-resume", seed, False,
                f"SimulatedCrash after {stage!r} did not fire",
            )
        except SimulatedCrash:
            pass
        store = CheckpointStore(store_dir)
        resumed = UncertainERPipeline(pipeline_config).run(
            dataset, checkpoints=store, resume=True
        )
        actual = _ranked_bytes(resumed, workdir / f"resumed-{stage}.csv")
        if stage not in store.hits:
            return ScenarioOutcome(
                "crash-resume", seed, False,
                f"resume after {stage!r} crash did not hit its checkpoint",
            )
        if actual != expected:
            diff_path = workdir / f"diff-{stage}.patch"
            diff_path.write_text(
                _diff(expected, actual, f"resumed-after-{stage}")
            )
            return ScenarioOutcome(
                "crash-resume", seed, False,
                f"resumed output diverged after {stage!r} crash "
                f"(diff: {diff_path})",
            )
    return ScenarioOutcome(
        "crash-resume", seed, True,
        f"byte-identical resume at all {len(PIPELINE_STAGES)} "
        "stage boundaries",
    )


@impure(reason="truncates checkpoint files on disk to simulate torn writes")
def _scenario_truncated_checkpoint(
    config: ChaosConfig, seed: int, workdir: Path
) -> ScenarioOutcome:
    """A torn checkpoint must be detected, skipped, and recovered from."""
    dataset = _build_dataset(config)
    pipeline_config = _pipeline_config(config)
    store_dir = workdir / "checkpoints"
    fresh = UncertainERPipeline(pipeline_config).run(
        dataset, checkpoints=CheckpointStore(store_dir)
    )
    expected = _ranked_bytes(fresh, workdir / "uninterrupted.csv")

    # Damage the seed-chosen stage; delete the deeper checkpoints so the
    # resume scan actually reaches the torn file instead of hitting a
    # deeper intact one first.
    index = seed % len(PIPELINE_STAGES)
    stage = PIPELINE_STAGES[index]
    store = CheckpointStore(store_dir)
    truncate_file(store.path_for(stage))
    for deeper in PIPELINE_STAGES[index + 1:]:
        store.path_for(deeper).unlink()

    resumed = UncertainERPipeline(pipeline_config).run(
        dataset, checkpoints=store, resume=True
    )
    actual = _ranked_bytes(resumed, workdir / f"resumed-torn-{stage}.csv")
    missed_stages = [miss.stage for miss in store.misses]
    if stage not in missed_stages:
        return ScenarioOutcome(
            "truncated-checkpoint", seed, False,
            f"torn {stage!r} checkpoint was not recorded as a miss "
            f"(misses: {missed_stages})",
        )
    if actual != expected:
        diff_path = workdir / f"diff-torn-{stage}.patch"
        diff_path.write_text(_diff(expected, actual, f"torn-{stage}"))
        return ScenarioOutcome(
            "truncated-checkpoint", seed, False,
            f"recovery from torn {stage!r} checkpoint diverged "
            f"(diff: {diff_path})",
        )
    return ScenarioOutcome(
        "truncated-checkpoint", seed, True,
        f"torn {stage!r} checkpoint detected and recovered byte-identically",
    )


@impure(reason="exhausts stage budgets against a real pipeline run")
def _scenario_budget(
    config: ChaosConfig, seed: int, workdir: Path
) -> ScenarioOutcome:
    """An exhausted budget must degrade gracefully, loudly, and completely."""
    dataset = _build_dataset(config)
    tracer = Tracer()
    pipeline_config = PipelineConfig(
        ng=config.ng,
        expert_weighting=True,
        blocking_budget=StageBudget(max_iterations=1),
    )
    resolution = UncertainERPipeline(pipeline_config, tracer=tracer).run(
        dataset
    )
    tracer.close()
    if not resolution.degraded:
        return ScenarioOutcome(
            "budget", seed, False,
            "budget of 1 iteration did not mark the resolution degraded",
        )
    report = resolution.report
    if report is None or not report.resilience.get("degraded"):
        return ScenarioOutcome(
            "budget", seed, False,
            "degraded flag missing from the run report resilience block",
        )
    return ScenarioOutcome(
        "budget", seed, True,
        f"degraded best-so-far run completed with {len(resolution)} pairs",
    )


@impure(reason="kills a live pool worker to exercise the chunk retry path")
def _scenario_worker_crash(
    config: ChaosConfig, seed: int, workdir: Path
) -> ScenarioOutcome:
    """A killed worker's chunks must be retried to byte-identical output."""
    dataset = _build_dataset(config)
    pipeline_config = _pipeline_config(config)
    serial = UncertainERPipeline(pipeline_config).run(dataset)
    expected = _ranked_bytes(serial, workdir / "serial.csv")

    # The seed picks which parallel dispatch loses a worker; chunk 0
    # always exists, and every map call of this workload has >= 2
    # chunks at 2 workers, so the plan is guaranteed to arm.
    plan = WorkerCrashPlan(map_call=seed % 3, chunk=0)
    executor = MultiprocessExecutor(workers=2, worker_fault=plan)
    survived = UncertainERPipeline(pipeline_config, executor=executor).run(
        dataset
    )
    actual = _ranked_bytes(survived, workdir / "worker-crash.csv")

    if not plan.fired:
        return ScenarioOutcome(
            "worker-crash", seed, False,
            f"crash plan (map call {plan.map_call}, chunk {plan.chunk}) "
            f"never armed — only {executor.stats.map_calls} parallel "
            "dispatches ran",
        )
    if executor.stats.worker_retries < 1:
        return ScenarioOutcome(
            "worker-crash", seed, False,
            "worker was killed but no chunk retry was recorded",
        )
    if actual != expected:
        diff_path = workdir / "diff-worker-crash.patch"
        diff_path.write_text(_diff(expected, actual, "after-worker-crash"))
        return ScenarioOutcome(
            "worker-crash", seed, False,
            f"output diverged from serial after the worker kill "
            f"(diff: {diff_path})",
        )
    return ScenarioOutcome(
        "worker-crash", seed, True,
        f"worker killed at dispatch {plan.map_call}; "
        f"{executor.stats.worker_retries} chunk(s) retried in-process; "
        "output byte-identical to serial",
    )


def _split_corpus(
    config: ChaosConfig,
) -> Tuple[Dataset, List[VictimRecord]]:
    """Corpus split into a resolved base and a stream of arrivals."""
    records = sorted(_build_dataset(config), key=lambda rec: rec.book_id)
    half = len(records) // 2
    return Dataset(records[:half], name="chaos-base"), records[half:]


def _batched(
    arrivals: Sequence[VictimRecord], size: int
) -> List[List[VictimRecord]]:
    return [
        list(arrivals[start:start + size])
        for start in range(0, len(arrivals), size)
    ]


@impure(reason="kills WAL-backed ingestion at every append boundary")
def _scenario_crash_mid_batch(
    config: ChaosConfig, seed: int, workdir: Path
) -> ScenarioOutcome:
    """A crash at any WAL write boundary must recover the committed prefix."""
    base, arrivals = _split_corpus(config)
    pipeline_config = _pipeline_config(config)
    batches = _batched(arrivals, 6 + seed)

    reference = IncrementalResolver(base, pipeline_config)
    for batch in batches:
        reference.add_records(batch)
    expected = _ranked_bytes(
        reference.resolution(), workdir / "uninterrupted.csv"
    )

    # Two appends per batch (begin, commit) — crash after each in turn.
    # Even boundaries die with a begin on disk and no commit, so exactly
    # that batch must be reported dropped; odd boundaries die after the
    # commit is durable, so recovery must lose nothing.
    for boundary in range(2 * len(batches)):
        wal_dir = workdir / f"wal-append{boundary}"
        plan = WalFaultPlan(crash_after_append=boundary)
        doomed = IncrementalResolver(
            base, pipeline_config, wal=WriteAheadLog(wal_dir, fault=plan)
        )
        try:
            for batch in batches:
                doomed.add_records(batch)
        except SimulatedCrash:
            pass
        assert doomed.wal is not None
        doomed.wal.close()
        if not plan.fired:
            return ScenarioOutcome(
                "crash-mid-batch", seed, False,
                f"crash at WAL append {boundary} never fired",
            )

        recovered, report = IncrementalResolver.recover(
            wal_dir, base, pipeline_config
        )
        expected_drops = 1 if boundary % 2 == 0 else 0
        if len(report.dropped_batches) != expected_drops:
            return ScenarioOutcome(
                "crash-mid-batch", seed, False,
                f"crash after append {boundary} dropped batches "
                f"{report.dropped_batches}, expected {expected_drops}",
            )
        reingested = 0
        for batch in batches:
            if batch[0].book_id not in recovered:
                recovered.add_records(batch)
                reingested += 1
        if reingested != len(batches) - report.batches_replayed:
            return ScenarioOutcome(
                "crash-mid-batch", seed, False,
                f"replayed {report.batches_replayed} + re-ingested "
                f"{reingested} != {len(batches)} batches",
            )
        actual = _ranked_bytes(
            recovered.resolution(), workdir / f"recovered-{boundary}.csv"
        )
        assert recovered.wal is not None
        recovered.wal.close()
        if actual != expected:
            diff_path = workdir / f"diff-append{boundary}.patch"
            diff_path.write_text(
                _diff(expected, actual, f"recovered-after-append-{boundary}")
            )
            return ScenarioOutcome(
                "crash-mid-batch", seed, False,
                f"recovery after append {boundary} diverged "
                f"(diff: {diff_path})",
            )
    return ScenarioOutcome(
        "crash-mid-batch", seed, True,
        f"byte-identical recovery at all {2 * len(batches)} WAL append "
        f"boundaries ({len(batches)} batches of <= {6 + seed})",
    )


@impure(reason="truncates the live WAL segment at every tail byte offset")
def _scenario_torn_wal(
    config: ChaosConfig, seed: int, workdir: Path
) -> ScenarioOutcome:
    """Every torn tail must scan to the committed prefix and recover."""
    base, arrivals = _split_corpus(config)
    pipeline_config = _pipeline_config(config)
    batches = _batched(arrivals, 6 + seed)
    pristine = workdir / "wal-pristine"
    resolver = IncrementalResolver(
        base, pipeline_config, wal=WriteAheadLog(pristine)
    )
    for batch in batches:
        resolver.add_records(batch)
    expected = _ranked_bytes(
        resolver.resolution(), workdir / "uninterrupted.csv"
    )
    assert resolver.wal is not None
    resolver.wal.close()

    live = sorted(pristine.glob("wal-*.log"))[-1]
    data = live.read_bytes()
    # The segment's final line is the last batch's commit marker; every
    # proper prefix of it is a torn write a real crash could leave.
    tail_start = data.rstrip(b"\n").rfind(b"\n") + 1
    last_id = len(batches) - 1
    offsets = range(tail_start, len(data))
    sampled = {tail_start, (tail_start + len(data)) // 2, len(data) - 1}
    recoveries = 0
    for offset in offsets:
        torn_dir = workdir / "wal-torn"
        if torn_dir.exists():
            shutil.rmtree(torn_dir)
        shutil.copytree(pristine, torn_dir)
        with open(torn_dir / live.name, "r+b") as handle:
            handle.truncate(offset)
        if offset in sampled:
            recovered, report = IncrementalResolver.recover(
                torn_dir, base, pipeline_config
            )
            ok = (
                report.batches_replayed == last_id
                and report.dropped_batches == (last_id,)
            )
            if ok:
                recovered.add_records(batches[-1])
                actual = _ranked_bytes(
                    recovered.resolution(),
                    workdir / f"recovered-offset{offset}.csv",
                )
                ok = actual == expected
                if not ok:
                    diff_path = workdir / f"diff-offset{offset}.patch"
                    diff_path.write_text(
                        _diff(expected, actual, f"torn-at-{offset}")
                    )
            assert recovered.wal is not None
            recovered.wal.close()
            recoveries += 1
            if not ok:
                return ScenarioOutcome(
                    "torn-wal", seed, False,
                    f"tear at byte {offset}: replayed "
                    f"{report.batches_replayed}, dropped "
                    f"{report.dropped_batches} — full recovery diverged "
                    f"or lost the wrong batches",
                )
        else:
            wal = WriteAheadLog(torn_dir)
            ok = (
                len(wal.committed_batches()) == last_id
                and tuple(wal.recovery.uncommitted_batches) == (last_id,)
            )
            wal.close()
            if not ok:
                return ScenarioOutcome(
                    "torn-wal", seed, False,
                    f"tear at byte {offset} did not scan down to "
                    f"{last_id} committed batches + batch {last_id} dropped",
                )
    return ScenarioOutcome(
        "torn-wal", seed, True,
        f"{len(offsets)} tear offsets scanned clean; {recoveries} full "
        f"recoveries byte-identical after re-ingesting the dropped batch",
    )


_Scenario = Callable[[ChaosConfig, int, Path], ScenarioOutcome]

#: Scenario registry, in execution order.
SCENARIOS: Dict[str, _Scenario] = {
    "corrupt-rows": _scenario_corrupt_rows,
    "crash-resume": _scenario_crash_resume,
    "truncated-checkpoint": _scenario_truncated_checkpoint,
    "budget": _scenario_budget,
    "worker-crash": _scenario_worker_crash,
    "crash-mid-batch": _scenario_crash_mid_batch,
    "torn-wal": _scenario_torn_wal,
}


@impure(reason="creates artifact directories and drives faulted runs")
def run_chaos(config: ChaosConfig) -> int:
    """Run the selected scenarios under every fault seed; 0 iff all held."""
    if config.artifacts_dir is not None:
        root = config.artifacts_dir
        root.mkdir(parents=True, exist_ok=True)
        ephemeral = False
    else:
        root = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        ephemeral = True

    names = (
        list(SCENARIOS) if config.scenario == "all" else [config.scenario]
    )
    outcomes: List[ScenarioOutcome] = []
    for seed in config.seeds:
        for name in names:
            workdir = root / f"{name}-seed{seed}"
            workdir.mkdir(parents=True, exist_ok=True)
            outcome = SCENARIOS[name](config, seed, workdir)
            outcomes.append(outcome)
            status = "ok" if outcome.ok else "FAILED"
            print(f"chaos {name} (seed {seed}): {status} — {outcome.detail}")

    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        print(
            f"chaos: {len(failures)}/{len(outcomes)} scenario runs failed; "
            f"artifacts kept in {root}",
            file=sys.stderr,
        )
        print(
            "chaos: kept checkpoint directories accumulate — prune with "
            "`repro checkpoint gc <dir> --keep N` (add --dry-run to list)",
            file=sys.stderr,
        )
        return 1
    if ephemeral:
        shutil.rmtree(root, ignore_errors=True)
    print(f"chaos: all {len(outcomes)} scenario runs held their invariants")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="seeded fault injection against the resilience layer",
    )
    parser.add_argument("--seed", default="0",
                        help="comma-separated fault seeds (default: 0)")
    parser.add_argument("--scenario", default="all",
                        choices=("all", *SCENARIOS))
    parser.add_argument("--persons", type=int, default=40)
    parser.add_argument("--corpus-seed", type=int, default=17)
    parser.add_argument("--ng", type=float, default=3.5)
    parser.add_argument("--corrupt-fraction", type=float, default=0.05)
    parser.add_argument("--artifacts-dir", type=Path, default=None)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.resilience.chaos``."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    try:
        seeds = tuple(
            int(part) for part in str(args.seed).split(",")
            if part.strip() != ""
        )
        config = ChaosConfig(
            seeds=seeds,
            scenario=args.scenario,
            persons=args.persons,
            corpus_seed=args.corpus_seed,
            ng=args.ng,
            corrupt_fraction=args.corrupt_fraction,
            artifacts_dir=args.artifacts_dir,
        )
    except ValueError as exc:
        print(f"repro-chaos: {exc}", file=sys.stderr)
        return 2
    return run_chaos(config)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
