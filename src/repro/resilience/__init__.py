"""Fault tolerance for the uncertain-ER pipeline.

The resilience layer has four parts, threaded through the whole system
(design and semantics in ``docs/RESILIENCE.md``):

* **checkpoint/resume** (:mod:`repro.resilience.checkpoints`) —
  versioned, content-hashed per-stage checkpoints with a byte-identical
  resume guarantee;
* **record quarantine** (:mod:`repro.resilience.quarantine`) —
  fail-fast / quarantine / repair policies for malformed rows at
  ingestion, persisted as ``quarantine.jsonl``;
* **stage budgets** (:mod:`repro.resilience.budgets`) — anytime
  semantics for blocking and mining, with an explicit ``degraded``
  flag;
* **fault injection** (:mod:`repro.resilience.faults` and the
  ``repro chaos`` CLI, :mod:`repro.resilience.chaos`) — seeded crashes,
  corruption, and truncation so recovery is asserted, not hoped for;
* **write-ahead log** (:mod:`repro.resilience.wal`) — segment-rotating,
  fsync'd durability for streaming ingestion: batches are begin/commit
  logged so a crash mid-batch recovers to the committed prefix,
  byte-identically.

``chaos`` is deliberately not imported here: it drives the full
pipeline and importing it eagerly would cycle back into
:mod:`repro.core`.
"""

from __future__ import annotations

from repro.resilience.budgets import BudgetMeter, StageBudget
from repro.resilience.checkpoints import (
    CheckpointMiss,
    CheckpointStore,
    GcReport,
    canonical_digest,
    chain_fingerprint,
    gc_checkpoints,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    WorkerCrashPlan,
    WorkerHangPlan,
    corrupt_csv_rows,
    exhausting_budget,
    hang_worker,
    kill_current_worker,
    truncate_file,
)
from repro.resilience.quarantine import (
    Quarantine,
    QuarantineEntry,
    QuarantinePolicy,
    RowError,
)
from repro.resilience.wal import (
    WalBatch,
    WalError,
    WalFaultPlan,
    WalRecovery,
    WriteAheadLog,
)

__all__ = [
    "BudgetMeter",
    "StageBudget",
    "CheckpointMiss",
    "CheckpointStore",
    "GcReport",
    "canonical_digest",
    "chain_fingerprint",
    "gc_checkpoints",
    "FaultInjector",
    "FaultPlan",
    "SimulatedCrash",
    "WorkerCrashPlan",
    "WorkerHangPlan",
    "corrupt_csv_rows",
    "exhausting_budget",
    "hang_worker",
    "kill_current_worker",
    "truncate_file",
    "Quarantine",
    "QuarantineEntry",
    "QuarantinePolicy",
    "RowError",
    "WalBatch",
    "WalError",
    "WalFaultPlan",
    "WalRecovery",
    "WriteAheadLog",
]
