"""Geographic distance for the ``PlaceXGeoDistance`` features and Eq. 1.

Places in the Names Project database carry GPS coordinates (Figure 3).
The features use the great-circle distance in kilometres between the same
place *type* (Birth, Permanent, Wartime, Death) of two records; Eq. 1
converts the distance to a similarity with a 100 km normalizer:
``max(0, 1 - geoDist/100)``.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Optional

__all__ = [
    "GeoPoint",
    "haversine_km",
    "geo_similarity",
    "EARTH_RADIUS_KM",
    "GEO_NORMALIZER_KM",
]

#: Mean Earth radius, km.
EARTH_RADIUS_KM = 6371.0088
#: Eq. 1 normalizer: places more than 100 km apart contribute 0 similarity.
GEO_NORMALIZER_KM = 100.0


class GeoPoint(NamedTuple):
    """A WGS-84 coordinate pair (decimal degrees)."""

    lat: float
    lon: float

    def validate(self) -> "GeoPoint":
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")
        return self


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlat = lat2 - lat1
    dlon = math.radians(b.lon - a.lon)
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def geo_similarity(
    a: Optional[GeoPoint],
    b: Optional[GeoPoint],
    normalizer_km: float = GEO_NORMALIZER_KM,
) -> Optional[float]:
    """Eq. 1 Geo branch: ``max(0, 1 - geoDist/normalizer)``.

    Returns ``None`` when either coordinate is missing so downstream
    consumers (the ADTree) can skip the feature.
    """
    if a is None or b is None:
        return None
    if normalizer_km <= 0:
        raise ValueError(f"normalizer_km must be positive, got {normalizer_km}")
    return max(0.0, 1.0 - haversine_km(a, b) / normalizer_km)
