"""Programmatic experiment runners mirroring the paper's evaluation.

The benchmark harness under ``benchmarks/`` regenerates each published
table/figure and asserts its shape; these functions expose the same
experiments as a library API, so downstream users can rerun them on
their own corpora (including real extracts loaded via
:mod:`repro.records.io`).

Each runner returns plain dataclasses/dicts — rendering is left to
:mod:`repro.evaluation.reporting` or the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.blocking.base import BlockingAlgorithm
from repro.blocking.mfiblocks import MFIBlocks, MFIBlocksConfig
from repro.blocking.scoring import BlockScorer, ScoringMethod
from repro.classify.training import PairClassifier
from repro.core.config import PipelineConfig
from repro.core.pipeline import UncertainERPipeline
from repro.evaluation.goldstandard import GoldStandard
from repro.evaluation.metrics import PairQuality
from repro.records.dataset import Dataset
from repro.similarity.items import GeoLookup

__all__ = [
    "ConditionResult",
    "run_conditions",
    "run_ng_sweep",
    "compare_blockers",
]

Pair = Tuple[int, int]


@dataclass(frozen=True)
class ConditionResult:
    """Averaged quality of one Table-9 condition."""

    name: str
    recall: float
    precision: float
    f1: float


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_conditions(
    dataset: Dataset,
    gold: GoldStandard,
    classifier: Optional[PairClassifier] = None,
    labeled_pairs: Optional[Mapping[Pair, bool]] = None,
    ng_values: Sequence[float] = (3.0, 3.5, 4.0),
    max_minsup: int = 5,
    geo_lookup: Optional[GeoLookup] = None,
) -> List[ConditionResult]:
    """The Table 9 grid: Base / ExpertWeighting / ExpertSim / SameSrc /
    Cls / SameSrc+Cls, averaged over ``ng_values``.

    ``classifier`` (or ``labeled_pairs`` to train one) is required for
    the Cls conditions; omit both to run only the first four.
    """
    conditions: List[Tuple[str, PipelineConfig]] = [
        ("Base", PipelineConfig(max_minsup=max_minsup)),
        ("Expert Weighting",
         PipelineConfig(max_minsup=max_minsup, expert_weighting=True)),
        ("ExpertSim", PipelineConfig(
            max_minsup=max_minsup, expert_weighting=True, expert_sim=True,
            geo_lookup=geo_lookup)),
        ("SameSrc", PipelineConfig(
            max_minsup=max_minsup, expert_weighting=True,
            same_source_discard=True)),
    ]
    can_classify = classifier is not None or labeled_pairs is not None
    if can_classify:
        conditions.append(("Cls", PipelineConfig(
            max_minsup=max_minsup, expert_weighting=True, classify=True)))
        conditions.append(("SameSrc + Cls", PipelineConfig(
            max_minsup=max_minsup, expert_weighting=True,
            same_source_discard=True, classify=True)))

    if classifier is None and labeled_pairs is not None:
        classifier = PairClassifier(dataset).fit(labeled_pairs)

    results: List[ConditionResult] = []
    for name, config in conditions:
        qualities: List[PairQuality] = []
        for ng in ng_values:
            resolution = UncertainERPipeline(config.with_ng(ng)).run(
                dataset,
                classifier=classifier if config.classify else None,
            )
            qualities.append(gold.evaluate(resolution.pairs))
        results.append(ConditionResult(
            name=name,
            recall=_mean([q.recall for q in qualities]),
            precision=_mean([q.precision for q in qualities]),
            f1=_mean([q.f1 for q in qualities]),
        ))
    return results


def run_ng_sweep(
    dataset: Dataset,
    gold: GoldStandard,
    ng_values: Sequence[float] = (1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    max_minsups: Sequence[int] = (4, 5, 6),
    sn_mode: str = "threshold",
    scoring_method: ScoringMethod = ScoringMethod.WEIGHTED,
) -> Dict[Tuple[int, float], PairQuality]:
    """The Figures 15-16 sweep: quality per (MaxMinSup, NG) point.

    Defaults to the paper-literal ``threshold`` SN semantics, which
    reproduce the published interior F-1 peak (see EXPERIMENTS.md).
    """
    results: Dict[Tuple[int, float], PairQuality] = {}
    for max_minsup in max_minsups:
        for ng in ng_values:
            config = MFIBlocksConfig(
                max_minsup=max_minsup, ng=ng, sn_mode=sn_mode,
                scoring=BlockScorer(method=scoring_method),
            )
            blocking = MFIBlocks(config).run(dataset)
            results[(max_minsup, ng)] = gold.evaluate(
                blocking.candidate_pairs
            )
    return results


def compare_blockers(
    dataset: Dataset,
    gold: GoldStandard,
    algorithms: Sequence[BlockingAlgorithm],
) -> Dict[str, PairQuality]:
    """The Table 10 comparison over any set of blocking algorithms."""
    results: Dict[str, PairQuality] = {}
    for algorithm in algorithms:
        results[algorithm.name] = gold.evaluate(
            algorithm.run(dataset).candidate_pairs
        )
    return results
