"""Pair-level quality metrics for blocking and resolution.

Entity resolution quality is measured over *record pairs*: a candidate
(or resolved) pair is a true positive when the gold standard deems both
records the same person. Alongside precision/recall/F-1 (Figures 15-16,
Tables 9-10), blocking evaluations use the *reduction ratio* — the
fraction of the full Cartesian comparison space the blocking avoided
(Section 3.1's "reduce the number of pair-wise comparisons by 87-97%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Tuple

__all__ = ["PairQuality", "pair_quality", "reduction_ratio", "f1_score"]

Pair = Tuple[int, int]


@dataclass(frozen=True)
class PairQuality:
    """Precision/recall/F-1 of a candidate pair set against gold pairs."""

    n_candidates: int
    n_gold: int
    true_positives: int

    @property
    def precision(self) -> float:
        if self.n_candidates == 0:
            return 0.0
        return self.true_positives / self.n_candidates

    @property
    def recall(self) -> float:
        if self.n_gold == 0:
            return 0.0
        return self.true_positives / self.n_gold

    @property
    def f1(self) -> float:
        return f1_score(self.precision, self.recall)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    denominator = precision + recall
    if denominator <= 0.0:
        return 0.0
    return 2.0 * precision * recall / denominator


def pair_quality(
    candidates: Iterable[Pair], gold: FrozenSet[Pair]
) -> PairQuality:
    """Evaluate a candidate pair collection against the gold standard.

    Pairs must be canonicalized (smaller id first) on both sides; the
    gold standard from :meth:`Dataset.true_pairs` already is.
    """
    candidate_set: Set[Pair] = set(candidates)
    for a, b in candidate_set:
        if a >= b:
            raise ValueError(f"pair not canonicalized: ({a}, {b})")
    return PairQuality(
        n_candidates=len(candidate_set),
        n_gold=len(gold),
        true_positives=len(candidate_set & gold),
    )


def reduction_ratio(n_candidates: int, n_records: int) -> float:
    """Fraction of the Cartesian comparison space avoided by blocking."""
    if n_records < 2:
        return 1.0
    total = n_records * (n_records - 1) // 2
    if n_candidates > total:
        raise ValueError(
            f"{n_candidates} candidates exceed the {total} possible pairs"
        )
    return 1.0 - n_candidates / total
