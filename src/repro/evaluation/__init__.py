"""Evaluation substrate: pair metrics, gold standards, reporting."""

from __future__ import annotations

from repro.evaluation.experiments import ConditionResult, compare_blockers, run_conditions, run_ng_sweep
from repro.evaluation.goldstandard import GoldStandard, TaggedGoldStandard
from repro.evaluation.metrics import (
    PairQuality,
    f1_score,
    pair_quality,
    reduction_ratio,
)
from repro.evaluation.reporting import format_percent, format_series, format_table

__all__ = [
    "ConditionResult",
    "compare_blockers",
    "run_conditions",
    "run_ng_sweep",
    "GoldStandard",
    "TaggedGoldStandard",
    "PairQuality",
    "f1_score",
    "pair_quality",
    "reduction_ratio",
    "format_percent",
    "format_series",
    "format_table",
]
