"""Plain-text table and series rendering for the benchmark harness.

Every benchmark prints the rows/series of the paper artifact it
regenerates; these helpers keep that output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_series", "format_percent"]

Cell = Union[str, int, float, None]


def _render_cell(cell: Cell, float_format: str) -> str:
    if cell is None:
        return ""
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return format(cell, float_format)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    float_format: str = ".3f",
) -> str:
    """Render an aligned text table with a separator under the header."""
    rendered: List[List[str]] = [
        [_render_cell(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Sequence[tuple],
    title: Optional[str] = None,
    float_format: str = ".3f",
) -> str:
    """Render figure-style data: one x column plus one column per series.

    ``series`` is a sequence of ``(name, values)`` pairs, each values
    sequence aligned with ``x_values``.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for index, x in enumerate(x_values):
        row: List[Cell] = [x]
        for _, values in series:
            row.append(values[index] if index < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a ratio as a percentage string."""
    return f"{value * 100:.{decimals}f}%"
