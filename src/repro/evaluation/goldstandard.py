"""Gold-standard management.

Two flavors exist, mirroring the paper's situation:

* a **complete** gold standard derived from synthetic ground truth
  (every same-person pair is known) — what our benchmarks use;
* a **partial** gold standard built from expert tags over candidate
  pairs — the paper's situation, where "there may well be additional
  matched pairs not found by any configuration" (untagged false
  negatives). :class:`TaggedGoldStandard` evaluates only over the tagged
  universe, the honest thing to do with partial truth.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.datagen.tagging import TaggedPair
from repro.evaluation.metrics import PairQuality, pair_quality
from repro.records.dataset import Dataset

__all__ = ["GoldStandard", "TaggedGoldStandard"]

Pair = Tuple[int, int]


class GoldStandard:
    """Complete pair-level truth from ground-truth person ids."""

    def __init__(self, matches: FrozenSet[Pair]):
        self.matches = matches

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "GoldStandard":
        return cls(dataset.true_pairs())

    def __len__(self) -> int:
        return len(self.matches)

    def is_match(self, pair: Pair) -> bool:
        return pair in self.matches

    def evaluate(self, candidates: Iterable[Pair]) -> PairQuality:
        return pair_quality(candidates, self.matches)


class TaggedGoldStandard:
    """Partial truth from expert tags; Maybe pairs are undecidable.

    ``evaluate`` restricts both candidates and gold to the tagged
    universe: untagged candidate pairs are *excluded* rather than counted
    as false positives (the paper manually re-examined its false
    positives and found 94 of 100 were real matches missing from the
    golden standard).
    """

    def __init__(self, tagged: Iterable[TaggedPair]):
        self.labels: Dict[Pair, Optional[bool]] = {
            entry.pair: entry.label for entry in tagged
        }
        self.matches: FrozenSet[Pair] = frozenset(
            pair for pair, label in self.labels.items() if label is True
        )

    def __len__(self) -> int:
        return len(self.labels)

    def known(self, pair: Pair) -> bool:
        """Whether the pair was tagged at all (Maybe counts as tagged)."""
        return pair in self.labels

    def is_match(self, pair: Pair) -> Optional[bool]:
        return self.labels.get(pair)

    def evaluate(
        self, candidates: Iterable[Pair], restrict_to_tagged: bool = True
    ) -> PairQuality:
        selected = set(candidates)
        if restrict_to_tagged:
            # Only pairs with a *decided* tag participate; Maybe pairs
            # are undecidable and excluded from both sides.
            selected = {
                pair for pair in selected
                if self.labels.get(pair) is not None
            }
        return pair_quality(selected, self.matches)
