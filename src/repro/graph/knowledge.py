"""Knowledge-graph construction from resolved entities (Figure 2).

The paper's motivation is turning victim reports into *people* and their
stories: the Guido Foa example assembles a graph of a person, their
relatives, places, and events from multiple reports. This module merges
each resolved entity's reports into an :class:`EntityProfile` and builds
a typed ``networkx`` graph of entities, places, and familial links.

Because resolution is uncertain, the graph is parameterized by the
certainty threshold: different thresholds yield different graphs, and
narratives are ranked accordingly (see :mod:`repro.graph.narrative`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.resolution import ResolutionResult, connected_components
from repro.records.dataset import Dataset
from repro.records.schema import (
    NAME_ATTRIBUTES,
    PLACE_TYPES,
    Gender,
    PlaceType,
    VictimRecord,
)

__all__ = ["EntityProfile", "merge_entity", "build_knowledge_graph"]


@dataclass
class EntityProfile:
    """Merged view of one resolved entity's reports.

    Every observed spelling is kept (``names``); the most frequent
    spelling per attribute is the display value. Conflicting facts are
    preserved rather than resolved — uncertain ER defers that to the
    querying researcher.
    """

    entity_id: int
    record_ids: Tuple[int, ...]
    names: Dict[str, List[str]] = field(default_factory=dict)
    gender: Optional[Gender] = None
    birth_year: Optional[int] = None
    birth_month: Optional[int] = None
    birth_day: Optional[int] = None
    profession: Optional[str] = None
    places: Dict[PlaceType, List[str]] = field(default_factory=dict)
    sources: Tuple[Tuple[str, str], ...] = ()

    def display_name(self) -> str:
        first = self.primary("first") or "?"
        last = self.primary("last") or "?"
        return f"{first} {last}"

    def primary(self, attribute: str) -> Optional[str]:
        """Most frequent observed value of a name attribute."""
        values = self.names.get(attribute)
        return values[0] if values else None

    def primary_place(self, place_type: PlaceType) -> Optional[str]:
        values = self.places.get(place_type)
        return values[0] if values else None

    @property
    def n_reports(self) -> int:
        return len(self.record_ids)


def _ranked_values(counter: Counter) -> List[str]:
    """Values by descending frequency, ties alphabetical."""
    return [value for value, _ in sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))]


def merge_entity(
    entity_id: int, records: List[VictimRecord]
) -> EntityProfile:
    """Merge a cluster of reports into one entity profile."""
    if not records:
        raise ValueError("cannot merge an empty cluster")
    names: Dict[str, Counter] = {attr: Counter() for attr in NAME_ATTRIBUTES}
    places: Dict[PlaceType, Counter] = {pt: Counter() for pt in PLACE_TYPES}
    genders: Counter = Counter()
    years: Counter = Counter()
    months: Counter = Counter()
    days: Counter = Counter()
    professions: Counter = Counter()
    sources: Set[Tuple[str, str]] = set()

    for record in records:
        for attribute in NAME_ATTRIBUTES:
            for value in record.names(attribute):
                names[attribute][value] += 1
        if record.gender is not None:
            genders[record.gender.value] += 1
        if record.birth_year is not None:
            years[record.birth_year] += 1
        if record.birth_month is not None:
            months[record.birth_month] += 1
        if record.birth_day is not None:
            days[record.birth_day] += 1
        if record.profession is not None:
            professions[record.profession] += 1
        for place_type in PLACE_TYPES:
            for place in record.places_of(place_type):
                if place.city:
                    places[place_type][place.city] += 1
                elif place.country:
                    places[place_type][place.country] += 1
        sources.add(record.source.key)

    def top(counter: Counter):
        ranked = sorted(counter.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[0][0] if ranked else None

    gender_value = top(genders)
    return EntityProfile(
        entity_id=entity_id,
        record_ids=tuple(sorted(record.book_id for record in records)),
        names={
            attr: _ranked_values(counter)
            for attr, counter in names.items()
            if counter
        },
        gender=Gender(gender_value) if gender_value else None,
        birth_year=top(years),
        birth_month=top(months),
        birth_day=top(days),
        profession=top(professions),
        places={
            place_type: _ranked_values(counter)
            for place_type, counter in places.items()
            if counter
        },
        sources=tuple(sorted(sources)),
    )


def build_knowledge_graph(
    dataset: Dataset,
    resolution: ResolutionResult,
    certainty: float = 0.0,
    include_singletons: bool = True,
) -> "nx.MultiDiGraph":
    """Build the Figure-2-style graph at one certainty level.

    Nodes:
      * ``("entity", id)`` with the merged :class:`EntityProfile`;
      * ``("place", name)`` for every referenced place.

    Edges:
      * entity -> place, typed ``born_in`` / ``resided_in`` /
        ``wartime_in`` / ``died_in``;
      * entity -> entity ``possible_family`` when two entities share a
        last name and agree on father or mother first name — the
        graph-level trace of the family granularity discussion.
    """
    seeds = dataset.record_ids if include_singletons else None
    clusters = connected_components(resolution.resolve(certainty), seeds=seeds)
    graph = nx.MultiDiGraph()
    profiles: List[EntityProfile] = []
    for index, cluster in enumerate(clusters):
        profile = merge_entity(index, [dataset[rid] for rid in sorted(cluster)])
        profiles.append(profile)
        graph.add_node(("entity", index), profile=profile,
                       label=profile.display_name())

    edge_types = {
        PlaceType.BIRTH: "born_in",
        PlaceType.PERMANENT: "resided_in",
        PlaceType.WARTIME: "wartime_in",
        PlaceType.DEATH: "died_in",
    }
    for profile in profiles:
        for place_type, relation in edge_types.items():
            place = profile.primary_place(place_type)
            if place is None:
                continue
            place_node = ("place", place)
            if place_node not in graph:
                graph.add_node(place_node, label=place)
            graph.add_edge(("entity", profile.entity_id), place_node,
                           relation=relation)

    _add_family_edges(graph, profiles)
    return graph


def _add_family_edges(
    graph: "nx.MultiDiGraph", profiles: List[EntityProfile]
) -> None:
    by_last: Dict[str, List[EntityProfile]] = {}
    for profile in profiles:
        for last in profile.names.get("last", ()):
            by_last.setdefault(last, []).append(profile)
    seen: Set[Tuple[int, int]] = set()
    for group in by_last.values():
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                key = (min(a.entity_id, b.entity_id), max(a.entity_id, b.entity_id))
                if key in seen:
                    continue
                if _shares_parent(a, b):
                    seen.add(key)
                    graph.add_edge(
                        ("entity", key[0]), ("entity", key[1]),
                        relation="possible_family",
                    )


def _shares_parent(a: EntityProfile, b: EntityProfile) -> bool:
    for attribute in ("father", "mother"):
        values_a = set(a.names.get(attribute, ()))
        values_b = set(b.names.get(attribute, ()))
        if values_a & values_b:
            return True
    return False
