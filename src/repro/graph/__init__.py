"""Knowledge-graph and narrative layer (the Figure 2 use case)."""

from __future__ import annotations

from repro.graph.knowledge import EntityProfile, build_knowledge_graph, merge_entity
from repro.graph.narrative import Narrative, narrative_for, ranked_narratives
from repro.graph.rescuers import RescuerRecord, link_rescuers

__all__ = [
    "EntityProfile",
    "build_knowledge_graph",
    "merge_entity",
    "Narrative",
    "narrative_for",
    "ranked_narratives",
    "RescuerRecord",
    "link_rescuers",
]
