"""Rescuer records and cross-collection linking (the Figure 2 story).

Yad Vashem "also commemorates non-Jewish individuals who risked their
lives to save Jewish people" — the Righteous Among the Nations. The
introduction's knowledge graph links victim entities to such records:
Clotilde Boggio "hid a child named Massimo from the Nazis in a village
called Cuorgne from 1944 to 1945", which attaches to Massimo Foa's
entity through a first-name plus place match.

This module models rescuer records and adds ``possibly_hidden_by`` edges
to a knowledge graph: a rescuer links to an entity when the hidden
child's recorded name matches one of the entity's first names (fuzzy,
Jaro-Winkler) and, if both sides know places, the rescue place is near
one of the entity's places.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx

from repro.geo import GeoPoint, haversine_km
from repro.graph.knowledge import EntityProfile
from repro.records.schema import PLACE_TYPES, PlaceType
from repro.similarity.items import GeoLookup
from repro.similarity.strings import jaro_winkler

__all__ = ["RescuerRecord", "link_rescuers"]


@dataclass(frozen=True)
class RescuerRecord:
    """A Righteous-Among-the-Nations commemoration record."""

    rescuer_id: int
    name: str
    place: str
    period: Optional[str] = None
    hidden_first_name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a rescuer record needs a name")


def _name_matches(
    hidden_name: str, profile: EntityProfile, threshold: float
) -> bool:
    for first in profile.names.get("first", ()):
        if jaro_winkler(hidden_name.lower(), first.lower()) >= threshold:
            return True
    return False


def _place_compatible(
    rescue_point: Optional[GeoPoint],
    profile: EntityProfile,
    geo_lookup: Optional[GeoLookup],
    max_km: float,
) -> bool:
    """True when the rescue place is near any of the entity's places.

    Unknown coordinates on either side are treated as compatible — the
    link stays a *possible* one, as uncertain ER demands.
    """
    if rescue_point is None or geo_lookup is None:
        return True
    entity_points = []
    for place_type in PLACE_TYPES:
        for city in profile.places.get(place_type, ()):
            point = geo_lookup(city)
            if point is not None:
                entity_points.append(point)
    if not entity_points:
        return True
    return any(
        haversine_km(rescue_point, point) <= max_km
        for point in entity_points
    )


def link_rescuers(
    graph: "nx.MultiDiGraph",
    rescuers: List[RescuerRecord],
    geo_lookup: Optional[GeoLookup] = None,
    name_threshold: float = 0.92,
    max_km: float = 60.0,
) -> int:
    """Add rescuer nodes and ``possibly_hidden_by`` edges to a graph.

    ``graph`` is a knowledge graph from
    :func:`repro.graph.knowledge.build_knowledge_graph`. Returns the
    number of edges added. Rescuers with no recorded hidden-child name
    still get a node (they are commemorations in their own right), just
    no edges.
    """
    added = 0
    entities: List[Tuple[tuple, EntityProfile]] = [
        (node, data["profile"])
        for node, data in graph.nodes(data=True)
        if node[0] == "entity"
    ]
    for rescuer in rescuers:
        rescuer_node = ("rescuer", rescuer.rescuer_id)
        graph.add_node(rescuer_node, label=rescuer.name, record=rescuer)
        if rescuer.hidden_first_name is None:
            continue
        rescue_point = geo_lookup(rescuer.place) if geo_lookup else None
        for node, profile in entities:
            if not _name_matches(
                rescuer.hidden_first_name, profile, name_threshold
            ):
                continue
            if not _place_compatible(
                rescue_point, profile, geo_lookup, max_km
            ):
                continue
            graph.add_edge(node, rescuer_node,
                           relation="possibly_hidden_by",
                           period=rescuer.period)
            added += 1
    return added
