"""Narrative generation from resolved entities.

"Weaving information to form narratives, stories told as a sequence of
events, has traditionally been a manual process" — the project's end
goal is automatic narrative construction. A narrative here is a short
biographical text assembled from an entity profile, and — because the
resolution is uncertain — a *ranked list* of alternative narratives at
different certainty levels rather than one crisp story (Section 1:
"the outcome is a ranked list of possible narratives").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.resolution import ResolutionResult
from repro.graph.knowledge import EntityProfile, merge_entity
from repro.records.dataset import Dataset
from repro.records.schema import Gender, PlaceType

__all__ = ["Narrative", "narrative_for", "ranked_narratives"]


@dataclass(frozen=True)
class Narrative:
    """One possible story: the text, its entity, and its confidence."""

    entity: EntityProfile
    text: str
    confidence: float
    certainty_level: float

    @property
    def n_reports(self) -> int:
        return self.entity.n_reports


def narrative_for(profile: EntityProfile) -> str:
    """Render an entity profile as a one-paragraph biography."""
    parts: List[str] = []
    name = profile.display_name()
    parts.append(name)

    if profile.birth_year is not None:
        date = str(profile.birth_year)
        if profile.birth_month is not None:
            date = f"{profile.birth_month:02d}/{date}"
            if profile.birth_day is not None:
                date = f"{profile.birth_day:02d}/{date}"
        born = f"was born {date}"
        birth_place = profile.primary_place(PlaceType.BIRTH)
        if birth_place:
            born += f" in {birth_place}"
        parts.append(born)
    else:
        birth_place = profile.primary_place(PlaceType.BIRTH)
        if birth_place:
            parts.append(f"was born in {birth_place}")

    father = profile.primary("father")
    mother = profile.primary("mother")
    if father and mother:
        parts.append(f"to {father} and {mother}")
    elif father:
        parts.append(f"to {father}")
    elif mother:
        parts.append(f"to {mother}")

    spouse = profile.primary("spouse")
    if spouse:
        married = "married to" if profile.gender is not Gender.FEMALE else "married to"
        parts.append(f"{married} {spouse}")

    residence = profile.primary_place(PlaceType.PERMANENT)
    if residence:
        parts.append(f"resided in {residence}")
    wartime = profile.primary_place(PlaceType.WARTIME)
    if wartime and wartime != residence:
        parts.append(f"was in {wartime} during the war")
    if profile.profession:
        parts.append(f"worked as a {profile.profession}")
    death = profile.primary_place(PlaceType.DEATH)
    if death:
        parts.append(f"perished in {death}")

    sentence = f"{parts[0]} " + ", ".join(parts[1:]) if len(parts) > 1 else parts[0]
    sources = profile.n_reports
    plural = "s" if sources != 1 else ""
    return f"{sentence}. (woven from {sources} report{plural})"


def ranked_narratives(
    dataset: Dataset,
    resolution: ResolutionResult,
    certainty_levels: Sequence[float] = (0.5, 0.25, 0.0),
    min_reports: int = 2,
) -> List[Narrative]:
    """Alternative narratives across certainty levels, best first.

    Each certainty level induces a clustering; each multi-report cluster
    yields a candidate narrative whose confidence is the mean ranking
    key of its internal pairs, scaled by the certainty level it survives
    at. Narratives about the same record set are deduplicated, keeping
    the highest-confidence version — so a stable cluster (the lucky
    "single narrative that dominates" case) appears once, while unstable
    clusters contribute alternatives.
    """
    if min_reports < 1:
        raise ValueError(f"min_reports must be >= 1, got {min_reports}")
    best: Dict[Tuple[int, ...], Narrative] = {}
    for level in sorted(set(certainty_levels), reverse=True):
        for cluster in resolution.entities(certainty=level):
            if len(cluster) < min_reports:
                continue
            key = tuple(sorted(cluster))
            internal = [
                evidence.ranking_key
                for evidence in resolution
                if evidence.pair[0] in cluster and evidence.pair[1] in cluster
            ]
            confidence = sum(internal) / len(internal) if internal else 0.0
            profile = merge_entity(len(best), [dataset[rid] for rid in key])
            narrative = Narrative(
                entity=profile,
                text=narrative_for(profile),
                confidence=confidence,
                certainty_level=level,
            )
            existing = best.get(key)
            if existing is None or narrative.confidence > existing.confidence:
                best[key] = narrative
    return sorted(best.values(), key=lambda n: (-n.confidence, n.entity.record_ids))
