"""Frequent-itemset mining substrate: FP-tree, FP-Growth, FPMax, pruning."""

from __future__ import annotations

from repro.mining.fpgrowth import (
    Itemset,
    frequent_itemsets,
    maximal_frequent_itemsets,
    maximal_via_filter,
)
from repro.mining.fptree import FPNode, FPTree
from repro.mining.pruning import DEFAULT_PRUNE_FRACTION, prune_frequent_items

__all__ = [
    "Itemset",
    "frequent_itemsets",
    "maximal_frequent_itemsets",
    "maximal_via_filter",
    "FPNode",
    "FPTree",
    "DEFAULT_PRUNE_FRACTION",
    "prune_frequent_items",
]
