"""FP-Growth and FPMax-style maximal frequent itemset mining.

MFIBlocks needs *maximal* frequent itemsets (MFIs): item sets whose
support meets ``minsup`` and that no frequent superset subsumes
(Section 4.1.1). The paper mines them with Borgelt's C implementation of
FP-Growth; this module is a from-scratch pure-Python equivalent:

* :func:`frequent_itemsets` — classic FP-Growth, all frequent itemsets.
* :func:`maximal_frequent_itemsets` — FPMax: FP-Growth with single-path
  short-circuiting and MFI-subsumption pruning, returning only maximal
  sets. An alternative "mine all, filter maximal" path exists for the
  ablation benchmark (``maximal_via_filter``).

Items may be any hashable values; they are mapped to dense integer ids
ordered by descending global support internally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Collection,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.contracts import (
    commutative_merge,
    fork_safe,
    hot_path,
    ordered_output,
    picklable_work,
    pure,
)
from repro.mining.fptree import FPTree
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.executor import Executor
from repro.resilience.budgets import BudgetMeter

__all__ = [
    "Itemset",
    "frequent_itemsets",
    "maximal_frequent_itemsets",
    "maximal_via_filter",
    "merge_mfi_candidates",
]

T = TypeVar("T", bound=Hashable)


@dataclass(frozen=True)
class Itemset(Generic[T]):
    """A mined itemset with its support count."""

    items: FrozenSet[T]
    support: int

    def __len__(self) -> int:
        return len(self.items)


class _Vocabulary(Generic[T]):
    """Bidirectional mapping item value <-> dense int id, frequency-ordered.

    Id 0 is the globally most frequent item; the id order doubles as the
    canonical FP-tree sort order.
    """

    def __init__(self, transactions: List[List[T]], minsup: int) -> None:
        support: Dict[T, int] = {}
        for transaction in transactions:
            for value in set(transaction):
                support[value] = support.get(value, 0) + 1
        frequent = [
            (value, count) for value, count in support.items() if count >= minsup
        ]
        # Descending support; ties broken by repr for determinism.
        frequent.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        self.value_of: List[T] = [value for value, _ in frequent]
        self.id_of: Dict[T, int] = {
            value: index for index, value in enumerate(self.value_of)
        }
        self.order: Dict[int, int] = {index: index for index in range(len(frequent))}

    def encode(self, transaction: Collection[T]) -> List[int]:
        return sorted(
            self.id_of[value]
            for value in set(transaction)
            if value in self.id_of
        )

    def decode(self, ids: Iterable[int]) -> FrozenSet[T]:
        return frozenset(self.value_of[item_id] for item_id in ids)


def _build_tree(
    transactions: List[List[T]], minsup: int
) -> Tuple[FPTree, "_Vocabulary[T]"]:
    vocabulary = _Vocabulary(transactions, minsup)
    tree = FPTree()
    for transaction in transactions:
        encoded = vocabulary.encode(transaction)
        if encoded:
            tree.insert(encoded)
    return tree, vocabulary


def _validate(transactions: List[List[T]], minsup: int) -> None:
    if minsup < 1:
        raise ValueError(f"minsup must be >= 1, got {minsup}")


# ---------------------------------------------------------------------------
# Classic FP-Growth (all frequent itemsets)
# ---------------------------------------------------------------------------


@ordered_output
def frequent_itemsets(
    transactions: Iterable[Collection[T]], minsup: int
) -> List[Itemset[T]]:
    """Mine *all* frequent itemsets with support >= ``minsup``."""
    materialized = [list(transaction) for transaction in transactions]
    _validate(materialized, minsup)
    tree, vocabulary = _build_tree(materialized, minsup)
    results: List[Itemset[T]] = []
    for ids, support in _fp_growth(tree, [], minsup, vocabulary.order):
        results.append(Itemset(vocabulary.decode(ids), support))
    return results


def _fp_growth(
    tree: FPTree,
    suffix: List[int],
    minsup: int,
    order: Dict[int, int],
) -> Iterator[Tuple[List[int], int]]:
    # Process items least-frequent first (highest id first).
    for item in sorted(tree.items(), reverse=True):
        support = tree.support_of(item)
        if support < minsup:
            continue
        itemset = suffix + [item]
        yield itemset, support
        conditional = FPTree.from_conditional(
            tree.prefix_paths(item), minsup, order
        )
        if not conditional.is_empty():
            yield from _fp_growth(conditional, itemset, minsup, order)


# ---------------------------------------------------------------------------
# FPMax (maximal frequent itemsets)
# ---------------------------------------------------------------------------


class _MFIStore:
    """Stores discovered MFIs and answers subsumption queries.

    ``is_subsumed(candidate)`` is true when some stored MFI is a superset
    of (or equal to) the candidate. An inverted index item → MFI ids keeps
    the check near-constant for typical candidates.
    """

    def __init__(self) -> None:
        self.itemsets: List[Tuple[FrozenSet[int], int]] = []
        self._by_item: Dict[int, Set[int]] = {}

    @pure
    def is_subsumed(self, candidate: FrozenSet[int]) -> bool:
        # The surviving-ids set is a pure intersection over the candidate's
        # posting lists, so the (hash-seed-dependent) visit order of
        # ``candidate`` cannot change the outcome.
        hits: Optional[Set[int]] = None
        for item in candidate:
            postings = self._by_item.get(item)
            if not postings:
                return False
            hits = set(postings) if hits is None else hits & postings
            if not hits:
                return False
        if hits is None:  # empty candidate: any stored MFI subsumes it
            return bool(self.itemsets)
        return True

    def add(self, candidate: FrozenSet[int], support: int) -> None:
        index = len(self.itemsets)
        self.itemsets.append((candidate, support))
        for item in candidate:
            self._by_item.setdefault(item, set()).add(index)


@hot_path
@ordered_output
def maximal_frequent_itemsets(
    transactions: Iterable[Collection[T]],
    minsup: int,
    tracer: Optional[Tracer] = None,
    budget: Optional[BudgetMeter] = None,
    executor: Optional[Executor] = None,
) -> List[Itemset[T]]:
    """Mine maximal frequent itemsets (FPMax).

    Returns MFIs as :class:`Itemset` values; the support reported is the
    support of the maximal set itself. An optional tracer times tree
    construction vs. the FPMax recursion and gauges the tree size —
    Fig. 12's dominant cost, broken down.

    ``budget`` bounds the FPMax recursion: each node expansion charges
    one unit, and an exhausted meter stops the search, returning the
    MFIs found so far (anytime semantics). The caller reads
    ``budget.degraded`` to learn the result is partial; with an
    iteration-only budget the cut point — and therefore the output —
    is deterministic.

    ``executor`` (when parallel) shards the FPMax top level across
    workers by item id; the shard union, maximality-pruned, is exactly
    the serial MFI set with the same supports
    (``docs/PARALLELISM.md``). A budgeted mine always runs serially:
    the budget's deterministic cut point is defined by the serial visit
    order, which sharding would not preserve.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    materialized = [list(transaction) for transaction in transactions]
    _validate(materialized, minsup)
    tracer.count("fpgrowth.transactions", len(materialized))
    if (
        executor is not None
        and executor.parallel
        and (budget is None or not budget.enabled)
    ):
        return _maximal_parallel(materialized, minsup, executor, tracer)
    with tracer.span("fpgrowth.build_tree", minsup=minsup):
        tree, vocabulary = _build_tree(materialized, minsup)
    tracer.gauge("fpgrowth.tree_nodes", tree.node_count())
    tracer.gauge("fpgrowth.vocabulary", len(vocabulary.value_of))
    store = _MFIStore()
    with tracer.span("fpgrowth.fpmax", minsup=minsup):
        _fpmax(tree, [], minsup, vocabulary.order, store, budget)
    if budget is not None and budget.degraded:
        tracer.count("fpgrowth.budget_exhausted", 1)
    tracer.count("fpgrowth.mfis", len(store.itemsets))
    return [
        Itemset(vocabulary.decode(ids), support) for ids, support in store.itemsets
    ]


@hot_path
def _fpmax(
    tree: FPTree,
    suffix: List[int],
    minsup: int,
    order: Dict[int, int],
    store: _MFIStore,
    budget: Optional[BudgetMeter] = None,
) -> None:
    if tree.is_empty():
        return
    if budget is not None:
        if budget.exhausted():
            return
        budget.charge()
    single = tree.single_path()
    if single is not None:
        candidate = frozenset(suffix) | {item for item, _ in single}
        if not store.is_subsumed(candidate):
            support = single[-1][1]
            store.add(candidate, support)
        return
    # Least-frequent items first so long candidates are found early and
    # subsume the rest.
    for item in sorted(tree.items(), reverse=True):
        support = tree.support_of(item)
        if support < minsup:
            continue
        new_suffix = suffix + [item]
        conditional = FPTree.from_conditional(tree.prefix_paths(item), minsup, order)
        if conditional.is_empty():
            candidate = frozenset(new_suffix)
            if not store.is_subsumed(candidate):
                store.add(candidate, support)
            continue
        # MFI-tree pruning: if the suffix plus *everything* that could
        # still be added is already covered, the subtree is fruitless.
        head = frozenset(new_suffix) | set(conditional.items())
        if store.is_subsumed(head):
            continue
        _fpmax(conditional, new_suffix, minsup, order, store, budget)
        if budget is not None and budget.degraded:
            return


# ---------------------------------------------------------------------------
# Sharded FPMax (parallel path)
# ---------------------------------------------------------------------------
#
# Correctness sketch (full argument in docs/PARALLELISM.md): FPMax
# processes top-level items least-frequent-first, and every candidate it
# emits while processing top item *i* contains *i* as its highest id.
# Sharding the top-level items therefore partitions the candidate space:
# each itemset's generating shard is uniquely determined by its max id,
# so shard-local mining finds every serial candidate exactly once, with
# its true support (supports come from the full tree, which every worker
# rebuilds from the complete encoded transaction list). Shard-local
# subsumption pruning is *weaker* than serial pruning — a shard cannot
# see another shard's supersets — which only ever leaves extra
# non-maximal candidates behind; the global merge removes exactly those.


@picklable_work
@fork_safe
def _mine_shard(
    payload: Tuple[List[List[int]], int, int, List[int]]
) -> List[Tuple[FrozenSet[int], int]]:
    """FPMax over the top-level items of one shard (pool-worker body).

    Rebuilds the FP-tree from the encoded transactions — cheaper and
    simpler than pickling a node graph with parent links — then runs the
    serial top-level loop restricted to the shard's item ids. Module-
    level and argument-determined, so a chunk computes the same result
    in a worker, in-process, or in a crash retry.
    """
    encoded, minsup, n_items, shard = payload
    tree = FPTree()
    for transaction in encoded:
        tree.insert(transaction)
    order = {item: item for item in range(n_items)}
    store = _MFIStore()
    present = set(tree.items())
    for item in sorted(shard, reverse=True):
        if item not in present:
            continue
        support = tree.support_of(item)
        if support < minsup:
            continue
        suffix = [item]
        conditional = FPTree.from_conditional(
            tree.prefix_paths(item), minsup, order
        )
        if conditional.is_empty():
            candidate = frozenset(suffix)
            if not store.is_subsumed(candidate):
                store.add(candidate, support)
            continue
        head = frozenset(suffix) | set(conditional.items())
        if store.is_subsumed(head):
            continue
        _fpmax(conditional, suffix, minsup, order, store)
    return store.itemsets


@commutative_merge
@ordered_output
def merge_mfi_candidates(
    shard_results: Iterable[List[Tuple[FrozenSet[int], int]]]
) -> List[Tuple[FrozenSet[int], int]]:
    """Globally maximality-prune shard-local MFI candidates.

    Order-independent: candidates are deduplicated and visited in
    canonical order (longest first, ties by sorted item ids), so any
    permutation of ``shard_results`` yields the same list. Longer sets
    are inserted before anything they could subsume, and equal-length
    distinct sets can never subsume each other, so one pass suffices.
    """
    unique = {
        candidate for result in shard_results for candidate in result
    }
    ordered = sorted(
        unique, key=lambda entry: (-len(entry[0]), sorted(entry[0]))
    )
    store = _MFIStore()
    for items, support in ordered:
        if not store.is_subsumed(items):
            store.add(items, support)
    return store.itemsets


def _maximal_parallel(
    materialized: List[List[T]],
    minsup: int,
    executor: Executor,
    tracer: Tracer,
) -> List[Itemset[T]]:
    """Shard the FPMax top level across the executor's workers."""
    vocabulary: _Vocabulary[T] = _Vocabulary(materialized, minsup)
    n_items = len(vocabulary.value_of)
    tracer.gauge("fpgrowth.vocabulary", n_items)
    if n_items == 0:
        return []
    encoded: List[List[int]] = []
    for transaction in materialized:
        ids = vocabulary.encode(transaction)
        if ids:
            encoded.append(ids)
    # Round-robin over item ids: ids are support-ordered, so each shard
    # gets a comparable mix of frequent (cheap) and rare (deep) items.
    n_shards = min(executor.workers, n_items)
    shards = [
        [item for item in range(n_items) if item % n_shards == index]
        for index in range(n_shards)
    ]
    payloads = [(encoded, minsup, n_items, shard) for shard in shards]
    with tracer.span("fpgrowth.fpmax", minsup=minsup, shards=n_shards):
        shard_results = executor.map_chunks(
            _mine_shard, payloads, tracer=tracer, label="fpgrowth.shards"
        )
        merged = merge_mfi_candidates(shard_results)
    tracer.count("fpgrowth.mfis", len(merged))
    return [Itemset(vocabulary.decode(ids), support) for ids, support in merged]


@ordered_output
def maximal_via_filter(
    transactions: Iterable[Collection[T]], minsup: int
) -> List[Itemset[T]]:
    """Reference implementation: mine all frequent itemsets, keep maximal.

    Exponentially slower than FPMax on dense data; exists for testing and
    the MFI-strategy ablation benchmark.
    """
    all_frequent = frequent_itemsets(transactions, minsup)
    all_frequent.sort(key=lambda itemset: -len(itemset.items))
    maximal: List[Itemset[T]] = []
    seen: List[FrozenSet[T]] = []
    for itemset in all_frequent:
        if any(itemset.items < kept for kept in seen):
            continue
        if any(itemset.items == kept for kept in seen):
            continue
        maximal.append(itemset)
        seen.append(itemset.items)
    return maximal
