"""FP-tree data structure (Han et al.), the substrate of FP-Growth/FPMax.

The tree stores transactions as prefix-shared paths of items ordered by
descending global frequency. Items are integer ids — callers map their
item vocabulary to dense ints first (see :mod:`repro.mining.fpgrowth`).

A header table links all nodes of each item so conditional pattern bases
can be collected by walking node-links, exactly as in the original
algorithm (and Borgelt's implementation the paper uses).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FPNode", "FPTree"]


class FPNode:
    """One node of an FP-tree: an item, a count, and tree links."""

    __slots__ = ("item", "count", "parent", "children", "next_link")

    def __init__(self, item: int, parent: Optional["FPNode"]) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[int, "FPNode"] = {}
        self.next_link: Optional["FPNode"] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FPNode(item={self.item}, count={self.count})"


class FPTree:
    """An FP-tree with a header table of per-item node chains."""

    def __init__(self) -> None:
        self.root = FPNode(item=-1, parent=None)
        #: item -> (first node of chain, total support in this tree)
        self.header: Dict[int, FPNode] = {}
        self.item_support: Dict[int, int] = {}

    def insert(self, items: Sequence[int], count: int = 1) -> None:
        """Insert one (ordered) transaction with multiplicity ``count``."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                # Prepend to the item's node-link chain.
                child.next_link = self.header.get(item)
                self.header[item] = child
            child.count += count
            node = child
        # Track per-item support for quick header queries.
        for item in items:
            self.item_support[item] = self.item_support.get(item, 0) + count

    def is_empty(self) -> bool:
        return not self.root.children

    def node_count(self) -> int:
        """Number of item nodes (root excluded) — the obs tree-size gauge.

        FP-tree size is the memory/time driver of Fig. 12; observability
        reads it once per built tree rather than instrumenting every
        ``insert`` on the hot path.
        """
        total = 0
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total

    def items(self) -> List[int]:
        """Items present in the tree."""
        return list(self.header)

    def nodes_of(self, item: int) -> Iterable[FPNode]:
        """Iterate the node-link chain of one item."""
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.next_link

    def support_of(self, item: int) -> int:
        """Total support of one item within this (conditional) tree."""
        return self.item_support.get(item, 0)

    def prefix_paths(self, item: int) -> List[Tuple[List[int], int]]:
        """Conditional pattern base of ``item``: (path items, count) pairs.

        Each path lists the ancestors of one ``item`` node from nearest to
        root (excluding the item itself), with the node's count.
        """
        paths: List[Tuple[List[int], int]] = []
        for node in self.nodes_of(item):
            path: List[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                path.append(parent.item)
                parent = parent.parent
            if path or node.count:
                paths.append((path, node.count))
        return paths

    def single_path(self) -> Optional[List[Tuple[int, int]]]:
        """If the tree is a single chain, return its (item, count) list.

        FPMax short-circuits single-path trees: the whole path (plus the
        current suffix) is one maximal candidate.
        """
        path: List[Tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (node,) = node.children.values()
            path.append((node.item, node.count))
        return path

    @classmethod
    def from_conditional(
        cls,
        paths: Sequence[Tuple[List[int], int]],
        minsup: int,
        order: Dict[int, int],
    ) -> "FPTree":
        """Build a conditional FP-tree from a pattern base.

        Items failing ``minsup`` within the base are dropped; surviving
        items keep the *global* frequency order (``order`` maps item →
        rank, lower rank = more frequent) so the tree stays canonical.
        """
        support: Dict[int, int] = {}
        for path, count in paths:
            for item in path:
                support[item] = support.get(item, 0) + count
        keep = {item for item, total in support.items() if total >= minsup}
        tree = cls()
        for path, count in paths:
            filtered = [item for item in path if item in keep]
            filtered.sort(key=lambda item: order[item])
            if filtered:
                tree.insert(filtered, count)
        return tree
