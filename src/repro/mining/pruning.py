"""Frequent-item pruning before mining (Section 6.3).

The performance evaluation "prunes the .03% most frequent items" before
mining, following the method of the MFIBlocks paper [18]: ultra-frequent
items (country names, common genders) generate enormous, uninformative
supports and dominate FP-Growth runtime without contributing precise
blocking keys.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple, TypeVar

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["prune_frequent_items", "DEFAULT_PRUNE_FRACTION"]

T = TypeVar("T", bound=Hashable)

#: The paper's pruning fraction: the 0.03% most frequent items.
DEFAULT_PRUNE_FRACTION = 0.0003


def prune_frequent_items(
    item_bags: Dict[int, FrozenSet[T]],
    fraction: float = DEFAULT_PRUNE_FRACTION,
    tracer: Optional[Tracer] = None,
) -> Tuple[Dict[int, FrozenSet[T]], Set[T]]:
    """Remove the ``fraction`` most frequent items from every bag.

    Returns the pruned bags (new dict; input is not mutated) and the set
    of pruned items. At least one item is pruned whenever ``fraction > 0``
    and the vocabulary is non-empty, mirroring ``ceil`` semantics so tiny
    corpora still exercise the pruned code path.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    tracer = tracer if tracer is not None else NULL_TRACER
    if fraction <= 0.0 or not item_bags:
        return dict(item_bags), set()

    with tracer.span("mining.prune", fraction=fraction):
        support: Dict[T, int] = {}
        for items in item_bags.values():
            for item in items:
                support[item] = support.get(item, 0) + 1

        ranked: List[Tuple[T, int]] = sorted(
            support.items(), key=lambda pair: (-pair[1], repr(pair[0]))
        )
        n_pruned = max(1, int(len(ranked) * fraction))
        pruned = {item for item, _ in ranked[:n_pruned]}

        result = {
            rid: frozenset(item for item in items if item not in pruned)
            for rid, items in item_bags.items()
        }
    tracer.gauge("mining.vocabulary", len(ranked))
    tracer.count("mining.items_pruned", len(pruned))
    return result, pruned
