"""A probabilistic-database view of the resolution (Section 3.2).

The paper situates uncertain ER in the probabilistic-database line of
work (Andritsos et al.; Beskales et al.; Ioannou et al.): pairwise
comparisons are "reasoned about and stored in a probabilistic database,
thus effectively retaining all matching information, and adding a
*same-as* uncertain semantic relation between entities", with entities
resolved at query time.

This module materializes that view. Each candidate pair's confidence is
mapped to a match probability (a calibrated sigmoid over the ADTree
score); the database is then a distribution over *possible worlds* —
subsets of same-as edges — and queries are answered by Monte-Carlo
sampling worlds and clustering each one:

* :meth:`ProbabilisticSameAs.same_entity_probability` — the marginal
  probability two records denote the same person, including transitive
  evidence through intermediate records;
* :meth:`ProbabilisticSameAs.expected_entities` — the expected number of
  entities in the dataset;
* :meth:`ProbabilisticSameAs.entity_distribution` — the distribution of
  cluster sets containing a given record, i.e. the ranked alternative
  readings ("possible narratives") of one victim's records.

The paper stops short of building the probability distribution ("we
refrain, in this work, from creating a probabilistic distribution over
the participation of tuples in clusters"); we implement it as the
natural extension hook the model invites.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.resolution import ResolutionResult, connected_components

__all__ = ["match_probability", "ProbabilisticSameAs"]

Pair = Tuple[int, int]


def match_probability(confidence: float, scale: float = 1.0) -> float:
    """Map a classifier confidence to a match probability (sigmoid).

    The ADTree score is a sum of log-odds-like contributions, so the
    logistic link is the natural calibration; ``scale`` sharpens (>1) or
    softens (<1) it.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return 1.0 / (1.0 + math.exp(-scale * confidence))


class ProbabilisticSameAs:
    """Monte-Carlo possible-worlds semantics over same-as edges."""

    def __init__(
        self,
        resolution: ResolutionResult,
        scale: float = 1.0,
        seed: int = 53,
        n_worlds: int = 500,
    ) -> None:
        if n_worlds < 1:
            raise ValueError(f"n_worlds must be >= 1, got {n_worlds}")
        self.edge_probabilities: Dict[Pair, float] = {
            evidence.pair: match_probability(evidence.ranking_key, scale)
            for evidence in resolution
        }
        self.records: List[int] = sorted(
            {rid for pair in self.edge_probabilities for rid in pair}
        )
        self.n_worlds = n_worlds
        self._rng = random.Random(seed)
        self._worlds: Optional[List[List[FrozenSet[int]]]] = None

    # -- world sampling --------------------------------------------------------

    def _sample_world(self) -> List[FrozenSet[int]]:
        rng = self._rng
        edges = [
            pair
            for pair, probability in self.edge_probabilities.items()
            if rng.random() < probability
        ]
        return connected_components(edges, seeds=self.records)

    @property
    def worlds(self) -> List[List[FrozenSet[int]]]:
        """The sampled possible worlds (clusterings), memoized."""
        if self._worlds is None:
            self._worlds = [self._sample_world() for _ in range(self.n_worlds)]
        return self._worlds

    # -- queries ---------------------------------------------------------------

    def same_entity_probability(self, a: int, b: int) -> float:
        """P(a and b denote the same entity), transitivity included."""
        if a == b:
            return 1.0
        hits = 0
        for world in self.worlds:
            for cluster in world:
                if a in cluster:
                    if b in cluster:
                        hits += 1
                    break
        return hits / len(self.worlds)

    def expected_entities(self) -> float:
        """Expected number of entities among the known records."""
        total = sum(len(world) for world in self.worlds)
        return total / len(self.worlds)

    def entity_distribution(self, rid: int) -> List[Tuple[FrozenSet[int], float]]:
        """Distribution over the cluster containing ``rid``.

        Returns (cluster, probability) sorted by descending probability —
        the ranked alternative entities one record may belong to.
        """
        counts: Counter = Counter()
        for world in self.worlds:
            for cluster in world:
                if rid in cluster:
                    counts[cluster] += 1
                    break
        total = len(self.worlds)
        return sorted(
            ((cluster, count / total) for cluster, count in counts.items()),
            key=lambda entry: (-entry[1], sorted(entry[0])),
        )

    def most_probable_world(self) -> List[FrozenSet[int]]:
        """The MAP world under independent edges: include edges with p > 0.5.

        (Exact for the independent-edge model since each world's
        probability factorizes over edges.)
        """
        edges = [
            pair
            for pair, probability in self.edge_probabilities.items()
            if probability > 0.5
        ]
        return connected_components(edges, seeds=self.records)
