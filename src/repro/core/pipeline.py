"""The uncertain-ER pipeline: blocking -> evidence -> ranked resolution.

This is the system of Figure 9, end to end:

1. preprocessing — records to item bags (handled by :class:`Dataset`);
2. **MFIBlocks** — soft, overlapping blocks and scored candidate pairs;
3. optional **SameSrc** filter — discard pairs sharing a source, "since
   this implies that a person was named twice in the same victim list or
   that a single witness filed two pages of testimony about the same
   person";
4. optional **ADTree** classification — re-rank by learned confidence
   and drop low scorers (the Cls condition);
5. a :class:`~repro.core.resolution.ResolutionResult` exposing ranked,
   certainty-tunable resolution.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.blocking.base import BlockingResult
from repro.blocking.mfiblocks import MFIBlocks
from repro.classify.training import PairClassifier
from repro.core.config import PipelineConfig
from repro.core.resolution import PairEvidence, ResolutionResult
from repro.records.dataset import Dataset

__all__ = ["UncertainERPipeline"]

Pair = Tuple[int, int]


class UncertainERPipeline:
    """Runs uncertain entity resolution over a dataset."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()

    # -- pipeline stages ---------------------------------------------------------

    def block(self, dataset: Dataset) -> BlockingResult:
        """Stage 2: MFIBlocks soft clustering."""
        return MFIBlocks(self.config.blocking_config()).run(dataset)

    def same_source_filter(
        self, dataset: Dataset, pairs: Iterable[Pair]
    ) -> List[Pair]:
        """Stage 3: drop pairs whose two records share a source."""
        return [
            pair
            for pair in pairs
            if dataset[pair[0]].source.key != dataset[pair[1]].source.key
        ]

    def train_classifier(
        self,
        dataset: Dataset,
        labeled_pairs: Mapping[Pair, bool],
        classifier: Optional[PairClassifier] = None,
    ) -> PairClassifier:
        """Stage 4 prerequisite: fit the ADTree on expert-labeled pairs."""
        classifier = classifier or PairClassifier(dataset)
        return classifier.fit(labeled_pairs)

    # -- end-to-end ---------------------------------------------------------------

    def run(
        self,
        dataset: Dataset,
        classifier: Optional[PairClassifier] = None,
        labeled_pairs: Optional[Mapping[Pair, bool]] = None,
    ) -> ResolutionResult:
        """Execute the configured pipeline.

        When ``config.classify`` is set, a classifier is required —
        either pre-trained (``classifier``) or trained on the spot from
        ``labeled_pairs``. Without classification the resolution ranks
        by blocking similarity alone.
        """
        config = self.config
        blocking = self.block(dataset)
        pair_scores: Dict[Pair, float] = dict(blocking.pair_scores)

        pairs: List[Pair] = sorted(pair_scores)
        if config.same_source_discard:
            pairs = self.same_source_filter(dataset, pairs)

        confidences: Dict[Pair, float] = {}
        if config.classify:
            if classifier is None:
                if labeled_pairs is None:
                    raise ValueError(
                        "classify=True needs a trained classifier or labeled_pairs"
                    )
                classifier = self.train_classifier(dataset, labeled_pairs)
            scored = classifier.rank(pairs)
            pairs = [
                pair for pair, score in scored
                if score > config.classifier_threshold
            ]
            confidences = dict(scored)

        evidence = [
            PairEvidence(
                pair=pair,
                similarity=pair_scores[pair],
                confidence=confidences.get(pair),
                same_source=(
                    dataset[pair[0]].source.key == dataset[pair[1]].source.key
                ),
            )
            for pair in pairs
        ]
        return ResolutionResult(evidence, n_records=len(dataset))
