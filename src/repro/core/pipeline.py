"""The uncertain-ER pipeline: blocking -> evidence -> ranked resolution.

This is the system of Figure 9, end to end:

1. preprocessing — records to item bags (handled by :class:`Dataset`);
2. **MFIBlocks** — soft, overlapping blocks and scored candidate pairs;
3. optional **SameSrc** filter — discard pairs sharing a source, "since
   this implies that a person was named twice in the same victim list or
   that a single witness filed two pages of testimony about the same
   person";
4. optional **ADTree** classification — re-rank by learned confidence
   and drop low scorers (the Cls condition);
5. a :class:`~repro.core.resolution.ResolutionResult` exposing ranked,
   certainty-tunable resolution.

Every stage runs under the pipeline's :class:`~repro.obs.tracer.Tracer`
(span taxonomy in ``docs/OBSERVABILITY.md``). With the default
:data:`~repro.obs.tracer.NULL_TRACER` instrumentation is free and the
output is byte-identical to an uninstrumented run; with an enabled
tracer the run additionally yields a
:class:`~repro.obs.report.RunReport` on the result.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.blocking.base import BlockingResult
from repro.blocking.mfiblocks import MFIBlocks
from repro.classify.training import PairClassifier
from repro.contracts import deterministic, ordered_output
from repro.core.config import PipelineConfig
from repro.core.resolution import PairEvidence, ResolutionResult
from repro.obs.report import RunReport
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.records.dataset import Dataset

__all__ = ["UncertainERPipeline", "corpus_stats"]

Pair = Tuple[int, int]


class UncertainERPipeline:
    """Runs uncertain entity resolution over a dataset."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- pipeline stages ---------------------------------------------------------

    @deterministic
    def block(self, dataset: Dataset) -> BlockingResult:
        """Stage 2: MFIBlocks soft clustering."""
        return MFIBlocks(
            self.config.blocking_config(), tracer=self.tracer
        ).run(dataset)

    def same_source_filter(
        self, dataset: Dataset, pairs: Iterable[Pair]
    ) -> List[Pair]:
        """Stage 3: drop pairs whose two records share a source."""
        return [
            pair
            for pair in pairs
            if dataset[pair[0]].source.key != dataset[pair[1]].source.key
        ]

    def train_classifier(
        self,
        dataset: Dataset,
        labeled_pairs: Mapping[Pair, bool],
        classifier: Optional[PairClassifier] = None,
    ) -> PairClassifier:
        """Stage 4 prerequisite: fit the ADTree on expert-labeled pairs."""
        classifier = classifier or PairClassifier(dataset, tracer=self.tracer)
        return classifier.fit(labeled_pairs)

    # -- end-to-end ---------------------------------------------------------------

    @ordered_output
    def run(
        self,
        dataset: Dataset,
        classifier: Optional[PairClassifier] = None,
        labeled_pairs: Optional[Mapping[Pair, bool]] = None,
    ) -> ResolutionResult:
        """Execute the configured pipeline.

        When ``config.classify`` is set, a classifier is required —
        either pre-trained (``classifier``) or trained on the spot from
        ``labeled_pairs``. Without classification the resolution ranks
        by blocking similarity alone.
        """
        config = self.config
        tracer = self.tracer
        with tracer.span("pipeline.run"):
            tracer.count("pipeline.records", len(dataset))
            with tracer.span("pipeline.block"):
                blocking = self.block(dataset)
            pair_scores: Dict[Pair, float] = dict(blocking.pair_scores)
            tracer.count("pipeline.candidate_pairs", len(pair_scores))

            pairs: List[Pair] = sorted(pair_scores)
            # Source identity is needed twice — by the SameSrc filter and
            # by the evidence flags — so derive it exactly once per pair.
            with tracer.span("pipeline.same_source"):
                same_source: Dict[Pair, bool] = {
                    pair: (
                        dataset[pair[0]].source.key
                        == dataset[pair[1]].source.key
                    )
                    for pair in pairs
                }
                if config.same_source_discard:
                    kept = [pair for pair in pairs if not same_source[pair]]
                    tracer.count(
                        "pipeline.pairs_dropped_same_source",
                        len(pairs) - len(kept),
                    )
                    pairs = kept

            confidences: Dict[Pair, float] = {}
            if config.classify:
                with tracer.span("pipeline.classify"):
                    if classifier is None:
                        if labeled_pairs is None:
                            raise ValueError(
                                "classify=True needs a trained classifier "
                                "or labeled_pairs"
                            )
                        classifier = self.train_classifier(
                            dataset, labeled_pairs
                        )
                    scored = classifier.rank(pairs)
                    filtered = [
                        pair for pair, score in scored
                        if score > config.classifier_threshold
                    ]
                    tracer.count(
                        "pipeline.pairs_dropped_classifier",
                        len(pairs) - len(filtered),
                    )
                    pairs = filtered
                    confidences = dict(scored)

            with tracer.span("pipeline.evidence"):
                evidence = [
                    PairEvidence(
                        pair=pair,
                        similarity=pair_scores[pair],
                        confidence=confidences.get(pair),
                        same_source=same_source[pair],
                    )
                    for pair in pairs
                ]
            tracer.count("pipeline.resolved_pairs", len(evidence))

        return ResolutionResult(
            evidence,
            n_records=len(dataset),
            report=self._build_report(dataset),
        )

    # -- observability ------------------------------------------------------------

    def _build_report(self, dataset: Dataset) -> Optional[RunReport]:
        """Snapshot the tracer's aggregate into a run report (None if off)."""
        aggregate = self.tracer.aggregate
        if aggregate is None:
            return None
        return RunReport.build(
            aggregate,
            config=self.config.to_echo(),
            corpus=corpus_stats(dataset),
        )


@deterministic
def corpus_stats(dataset: Dataset) -> Dict[str, object]:
    """Corpus summary echoed into run reports."""
    sources = {record.source.key for record in dataset}
    n_items = sum(len(bag) for bag in dataset.item_bags.values())
    return {
        "name": dataset.name,
        "n_records": len(dataset),
        "n_sources": len(sources),
        "n_items": n_items,
    }
