"""The uncertain-ER pipeline: blocking -> evidence -> ranked resolution.

This is the system of Figure 9, end to end:

1. preprocessing — records to item bags (handled by :class:`Dataset`);
2. **MFIBlocks** — soft, overlapping blocks and scored candidate pairs;
3. optional **SameSrc** filter — discard pairs sharing a source, "since
   this implies that a person was named twice in the same victim list or
   that a single witness filed two pages of testimony about the same
   person";
4. optional **ADTree** classification — re-rank by learned confidence
   and drop low scorers (the Cls condition);
5. a :class:`~repro.core.resolution.ResolutionResult` exposing ranked,
   certainty-tunable resolution.

Every stage runs under the pipeline's :class:`~repro.obs.tracer.Tracer`
(span taxonomy in ``docs/OBSERVABILITY.md``). With the default
:data:`~repro.obs.tracer.NULL_TRACER` instrumentation is free and the
output is byte-identical to an uninstrumented run; with an enabled
tracer the run additionally yields a
:class:`~repro.obs.report.RunReport` on the result.

The pipeline is also the integration point of the resilience layer
(``docs/RESILIENCE.md``): pass a
:class:`~repro.resilience.checkpoints.CheckpointStore` and each
completed stage persists a fingerprint-chained checkpoint; pass
``resume=True`` and the run restarts from the deepest checkpoint that
verifies — with output byte-identical to an uninterrupted run, because
every stage is deterministic and the checkpointed state round-trips
exactly. A :class:`~repro.resilience.faults.FaultInjector` hooks the
stage boundaries so chaos tests can kill the run at any of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.blocking.base import BlockingResult
from repro.blocking.mfiblocks import MFIBlocks
from repro.classify.printer import render_tree
from repro.classify.training import PairClassifier
from repro.contracts import deterministic, ordered_output
from repro.core.config import PipelineConfig
from repro.core.resolution import PairEvidence, ResolutionResult
from repro.obs.report import RunReport
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.executor import Executor, SerialExecutor
from repro.records.dataset import Dataset
from repro.resilience.checkpoints import (
    CheckpointStore,
    canonical_digest,
    chain_fingerprint,
)
from repro.resilience.faults import FaultInjector

__all__ = ["UncertainERPipeline", "corpus_stats", "PIPELINE_STAGES"]

Pair = Tuple[int, int]

#: The checkpointable stage boundaries, in execution order. Each name
#: is both a checkpoint key and a fault-injection point.
PIPELINE_STAGES: Tuple[str, ...] = (
    "blocking",
    "same_source",
    "classify",
    "evidence",
)


@dataclass
class _RunState:
    """Everything later stages need from earlier ones.

    Checkpoints are cumulative: the payload written after stage *k*
    reconstructs this state well enough to run stages *k+1..n*, so a
    resume only ever needs the single deepest valid checkpoint.
    """

    pair_scores: Dict[Pair, float] = field(default_factory=dict)
    degraded: bool = False
    pairs: List[Pair] = field(default_factory=list)
    same_source: Dict[Pair, bool] = field(default_factory=dict)
    confidences: Dict[Pair, float] = field(default_factory=dict)
    evidence: List[PairEvidence] = field(default_factory=list)


@deterministic
def _encode_state(state: _RunState, stage: str) -> Dict[str, Any]:
    """JSON-safe snapshot of the state as of ``stage`` (sorted, exact).

    Floats survive a JSON round-trip bit-exactly (``repr`` based), so a
    decoded checkpoint reproduces the fresh-run bytes downstream.
    """
    payload: Dict[str, Any] = {
        "stage": stage,
        "degraded": state.degraded,
        "pair_scores": [
            [a, b, score] for (a, b), score in sorted(state.pair_scores.items())
        ],
    }
    if stage in ("same_source", "classify", "evidence"):
        payload["pairs"] = [[a, b] for a, b in state.pairs]
        payload["same_source"] = [
            [a, b, flag] for (a, b), flag in sorted(state.same_source.items())
        ]
    if stage in ("classify", "evidence"):
        payload["confidences"] = [
            [a, b, score] for (a, b), score in sorted(state.confidences.items())
        ]
    if stage == "evidence":
        payload["evidence"] = [
            [e.pair[0], e.pair[1], e.similarity, e.confidence, e.same_source]
            for e in state.evidence
        ]
    return payload


@deterministic
def _decode_state(payload: Mapping[str, Any]) -> _RunState:
    """Inverse of :func:`_encode_state`."""
    state = _RunState(degraded=bool(payload.get("degraded", False)))
    state.pair_scores = {
        (a, b): score for a, b, score in payload.get("pair_scores", [])
    }
    state.pairs = [(a, b) for a, b in payload.get("pairs", [])]
    state.same_source = {
        (a, b): flag for a, b, flag in payload.get("same_source", [])
    }
    state.confidences = {
        (a, b): score for a, b, score in payload.get("confidences", [])
    }
    state.evidence = [
        PairEvidence(
            pair=(a, b),
            similarity=similarity,
            confidence=confidence,
            same_source=same_source,
        )
        for a, b, similarity, confidence, same_source in payload.get(
            "evidence", []
        )
    ]
    return state


class UncertainERPipeline:
    """Runs uncertain entity resolution over a dataset."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        tracer: Optional[Tracer] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Execution machinery, like the tracer — deliberately NOT part
        # of PipelineConfig: the worker count must never reach config
        # echoes or checkpoint fingerprints, so a run checkpointed at
        # one worker count resumes byte-identically at any other
        # (docs/PARALLELISM.md).
        self.executor = executor if executor is not None else SerialExecutor()

    # -- pipeline stages ---------------------------------------------------------

    @deterministic
    def block(self, dataset: Dataset) -> BlockingResult:
        """Stage 2: MFIBlocks soft clustering."""
        return MFIBlocks(
            self.config.blocking_config(),
            tracer=self.tracer,
            executor=self.executor,
        ).run(dataset)

    def same_source_filter(
        self, dataset: Dataset, pairs: Iterable[Pair]
    ) -> List[Pair]:
        """Stage 3: drop pairs whose two records share a source."""
        return [
            pair
            for pair in pairs
            if dataset[pair[0]].source.key != dataset[pair[1]].source.key
        ]

    def train_classifier(
        self,
        dataset: Dataset,
        labeled_pairs: Mapping[Pair, bool],
        classifier: Optional[PairClassifier] = None,
    ) -> PairClassifier:
        """Stage 4 prerequisite: fit the ADTree on expert-labeled pairs."""
        classifier = classifier or PairClassifier(dataset, tracer=self.tracer)
        return classifier.fit(labeled_pairs)

    # -- end-to-end ---------------------------------------------------------------

    @ordered_output
    def run(
        self,
        dataset: Dataset,
        classifier: Optional[PairClassifier] = None,
        labeled_pairs: Optional[Mapping[Pair, bool]] = None,
        checkpoints: Optional[CheckpointStore] = None,
        resume: bool = False,
        faults: Optional[FaultInjector] = None,
    ) -> ResolutionResult:
        """Execute the configured pipeline.

        When ``config.classify`` is set, a classifier is required —
        either pre-trained (``classifier``) or trained on the spot from
        ``labeled_pairs``. Without classification the resolution ranks
        by blocking similarity alone.

        With ``checkpoints`` every completed stage is persisted;
        ``resume=True`` additionally restarts from the deepest
        checkpoint whose fingerprint chain verifies against this
        corpus, configuration, and label set, producing output
        byte-identical to an uninterrupted run. ``faults`` is the chaos
        hook: it may raise
        :class:`~repro.resilience.faults.SimulatedCrash` at any stage
        boundary (after that stage's checkpoint is durable).
        """
        tracer = self.tracer
        fingerprints: Dict[str, str] = {}
        if checkpoints is not None:
            # Fingerprinting serializes the whole corpus; skip the cost
            # entirely for uncheckpointed (e.g. benchmark) runs.
            fingerprints = self._stage_fingerprints(
                dataset, classifier, labeled_pairs
            )

        state = _RunState()
        first_stage = 0
        resumed_from: Optional[str] = None
        if checkpoints is not None and resume:
            for index in reversed(range(len(PIPELINE_STAGES))):
                stage = PIPELINE_STAGES[index]
                payload = checkpoints.load(stage, fingerprints[stage])
                if payload is not None:
                    state = _decode_state(payload)
                    first_stage = index + 1
                    resumed_from = stage
                    break

        with tracer.span("pipeline.run"):
            tracer.count("pipeline.records", len(dataset))
            if resumed_from is not None:
                tracer.count("resilience.stages_resumed", first_stage)
            for index in range(first_stage, len(PIPELINE_STAGES)):
                stage = PIPELINE_STAGES[index]
                self._run_stage(stage, state, dataset, classifier, labeled_pairs)
                if checkpoints is not None:
                    with tracer.span("pipeline.checkpoint", stage=stage):
                        checkpoints.save(
                            stage, fingerprints[stage],
                            _encode_state(state, stage),
                        )
                    tracer.count("resilience.checkpoints_saved", 1)
                if faults is not None:
                    faults.after_stage(stage)
            if state.degraded:
                tracer.count("pipeline.degraded", 1)
            tracer.count("pipeline.resolved_pairs", len(state.evidence))

        return ResolutionResult(
            state.evidence,
            n_records=len(dataset),
            report=self._build_report(
                dataset,
                resilience=self._resilience_info(
                    state, checkpoints, resumed_from
                ),
            ),
            degraded=state.degraded,
        )

    # -- stage bodies -------------------------------------------------------------

    def _run_stage(
        self,
        stage: str,
        state: _RunState,
        dataset: Dataset,
        classifier: Optional[PairClassifier],
        labeled_pairs: Optional[Mapping[Pair, bool]],
    ) -> None:
        """Execute one named stage, mutating ``state`` in place."""
        config = self.config
        tracer = self.tracer
        if stage == "blocking":
            with tracer.span("pipeline.block"):
                blocking = self.block(dataset)
            state.pair_scores = dict(blocking.pair_scores)
            state.degraded = blocking.degraded
            tracer.count("pipeline.candidate_pairs", len(state.pair_scores))
        elif stage == "same_source":
            pairs: List[Pair] = sorted(state.pair_scores)
            # Source identity is needed twice — by the SameSrc filter and
            # by the evidence flags — so derive it exactly once per pair.
            with tracer.span("pipeline.same_source"):
                state.same_source = {
                    pair: (
                        dataset[pair[0]].source.key
                        == dataset[pair[1]].source.key
                    )
                    for pair in pairs
                }
                if config.same_source_discard:
                    kept = [
                        pair for pair in pairs if not state.same_source[pair]
                    ]
                    tracer.count(
                        "pipeline.pairs_dropped_same_source",
                        len(pairs) - len(kept),
                    )
                    pairs = kept
            state.pairs = pairs
        elif stage == "classify":
            if not config.classify:
                return
            with tracer.span("pipeline.classify"):
                if classifier is None:
                    if labeled_pairs is None:
                        raise ValueError(
                            "classify=True needs a trained classifier "
                            "or labeled_pairs"
                        )
                    classifier = self.train_classifier(dataset, labeled_pairs)
                scored = classifier.rank(state.pairs, executor=self.executor)
                filtered = [
                    pair for pair, score in scored
                    if score > config.classifier_threshold
                ]
                tracer.count(
                    "pipeline.pairs_dropped_classifier",
                    len(state.pairs) - len(filtered),
                )
                state.pairs = filtered
                state.confidences = dict(scored)
        elif stage == "evidence":
            with tracer.span("pipeline.evidence"):
                state.evidence = [
                    PairEvidence(
                        pair=pair,
                        similarity=state.pair_scores[pair],
                        confidence=(
                            state.confidences.get(pair)
                            if config.classify else None
                        ),
                        same_source=state.same_source[pair],
                    )
                    for pair in state.pairs
                ]
        else:  # pragma: no cover - PIPELINE_STAGES is the only caller
            raise ValueError(f"unknown pipeline stage: {stage!r}")

    # -- checkpoint identity ------------------------------------------------------

    def _stage_fingerprints(
        self,
        dataset: Dataset,
        classifier: Optional[PairClassifier],
        labeled_pairs: Optional[Mapping[Pair, bool]],
    ) -> Dict[str, str]:
        """The fingerprint chain for this (corpus, config, labels) run.

        Chaining makes staleness structural: a checkpoint can only hit
        when the corpus content, the full configuration, everything
        upstream of its stage, and — for classification — the label
        set and any pre-trained model all match.
        """
        labels_digest: Optional[str] = None
        if labeled_pairs is not None:
            labels_digest = canonical_digest(
                [[a, b, flag] for (a, b), flag in sorted(labeled_pairs.items())]
            )
        classifier_digest: Optional[str] = None
        if classifier is not None and classifier.model is not None:
            classifier_digest = canonical_digest(render_tree(classifier.model))

        fingerprints: Dict[str, str] = {}
        parent: Optional[str] = None
        contexts: Dict[str, Dict[str, Any]] = {
            "blocking": {
                "corpus": dataset.content_fingerprint(),
                "config": self.config.to_echo(),
            },
            "same_source": {},
            "classify": {
                "labels": labels_digest,
                "classifier": classifier_digest,
            },
            "evidence": {},
        }
        for stage in PIPELINE_STAGES:
            parent = chain_fingerprint(parent, stage, contexts[stage])
            fingerprints[stage] = parent
        return fingerprints

    # -- observability ------------------------------------------------------------

    @staticmethod
    def _resilience_info(
        state: _RunState,
        checkpoints: Optional[CheckpointStore],
        resumed_from: Optional[str],
    ) -> Dict[str, Any]:
        """The report's resilience block (see docs/RESILIENCE.md)."""
        info: Dict[str, Any] = {"degraded": state.degraded}
        if checkpoints is not None:
            hits, misses = checkpoints.summary()
            info["checkpoints"] = {
                "directory": str(checkpoints.directory),
                "resumed_from": resumed_from,
                "hits": hits,
                "misses": checkpoints.miss_counts(),
            }
        return info

    def _build_report(
        self,
        dataset: Dataset,
        resilience: Optional[Mapping[str, Any]] = None,
    ) -> Optional[RunReport]:
        """Snapshot the tracer's aggregate into a run report (None if off)."""
        aggregate = self.tracer.aggregate
        if aggregate is None:
            return None
        return RunReport.build(
            aggregate,
            config=self.config.to_echo(),
            corpus=corpus_stats(dataset),
            resilience=resilience,
            parallel=self.executor.to_echo(),
            parallel_profile=self.executor.profile_echo(),
        )


@deterministic
def corpus_stats(dataset: Dataset) -> Dict[str, object]:
    """Corpus summary echoed into run reports."""
    sources = {record.source.key for record in dataset}
    n_items = sum(len(bag) for bag in dataset.item_bags.values())
    return {
        "name": dataset.name,
        "n_records": len(dataset),
        "n_sources": len(sources),
        "n_items": n_items,
    }
