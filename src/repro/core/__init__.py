"""The paper's primary contribution: the multi-source uncertain entity
resolution model — soft blocking, ranked resolution, certainty-threshold
querying, and multi-granularity entities."""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.core.granularity import (
    GranularityLevel,
    config_for,
    family_config,
    family_gold_standard,
)
from repro.core.incremental import IncrementalResolver
from repro.core.pipeline import UncertainERPipeline
from repro.core.probdb import ProbabilisticSameAs, match_probability
from repro.core.resolution import (
    PairEvidence,
    ResolutionResult,
    connected_components,
)

__all__ = [
    "PipelineConfig",
    "GranularityLevel",
    "config_for",
    "family_config",
    "family_gold_standard",
    "IncrementalResolver",
    "UncertainERPipeline",
    "ProbabilisticSameAs",
    "match_probability",
    "PairEvidence",
    "ResolutionResult",
    "connected_components",
]
