"""Ranked resolution: the uncertain-ER output model (Section 3.2).

"The output of the uncertain ER process is a ranked list of results,
associating a similarity value for each match, rather than a binary
match/non-match decision." Entities are disambiguated only at query
time: a Web user hunting for relatives lowers the certainty threshold to
see more candidates; an app reporting victim counts raises it for a
single deterministic answer.

:class:`ResolutionResult` holds the evidence per candidate pair —
blocking similarity, optional ADTree confidence, same-source flag — and
answers certainty-threshold queries, producing crisp pair sets or entity
clusters (connected components) on demand.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.evaluation.goldstandard import GoldStandard
from repro.evaluation.metrics import PairQuality
from repro.obs.report import RunReport

__all__ = ["PairEvidence", "ResolutionResult", "connected_components"]

Pair = Tuple[int, int]


@dataclass(frozen=True)
class PairEvidence:
    """Everything the pipeline learned about one candidate pair."""

    pair: Pair
    similarity: float
    confidence: Optional[float] = None
    same_source: bool = False

    @property
    def ranking_key(self) -> float:
        """Confidence when a classifier ran, blocking similarity otherwise."""
        return self.confidence if self.confidence is not None else self.similarity


def connected_components(
    pairs: Iterable[Pair], seeds: Optional[Iterable[int]] = None
) -> List[FrozenSet[int]]:
    """Group record ids into clusters via union-find over match pairs.

    ``seeds`` optionally adds singleton records so unmatched records
    still appear as single-record entities.
    """
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        for node in (a, b):
            parent.setdefault(node, node)
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[max(root_a, root_b)] = min(root_a, root_b)

    for a, b in pairs:
        union(a, b)
    if seeds is not None:
        for rid in seeds:
            parent.setdefault(rid, rid)

    groups: Dict[int, Set[int]] = {}
    for node in parent:
        groups.setdefault(find(node), set()).add(node)
    return sorted(
        (frozenset(group) for group in groups.values()),
        key=lambda group: (min(group), len(group)),
    )


class ResolutionResult:
    """The ranked, queryable outcome of an uncertain-ER run."""

    def __init__(
        self,
        evidence: Iterable[PairEvidence],
        n_records: int = 0,
        report: Optional[RunReport] = None,
        degraded: bool = False,
    ) -> None:
        self._evidence: Dict[Pair, PairEvidence] = {}
        for entry in evidence:
            a, b = entry.pair
            if a >= b:
                raise ValueError(f"pair not canonicalized: {entry.pair}")
            self._evidence[entry.pair] = entry
        self.n_records = n_records
        #: The instrumentation account of the run that produced this
        #: resolution (None with the default no-op tracer). Deliberately
        #: not serialized by :meth:`to_json` — resolution artifacts stay
        #: byte-identical with tracing on or off.
        self.report = report
        #: True when an exhausted stage budget cut the run short: the
        #: ranking is valid but best-so-far, not complete. Serialized —
        #: a degraded artifact must never pass for a full one.
        self.degraded = degraded

    # -- container ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._evidence)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._evidence

    def __getitem__(self, pair: Pair) -> PairEvidence:
        return self._evidence[pair]

    def __iter__(self) -> Iterator[PairEvidence]:
        return iter(self._evidence.values())

    @property
    def pairs(self) -> FrozenSet[Pair]:
        return frozenset(self._evidence)

    # -- ranked / certainty queries --------------------------------------------------

    def ranked(self) -> List[PairEvidence]:
        """All evidence sorted by descending ranking key."""
        return sorted(
            self._evidence.values(), key=lambda e: (-e.ranking_key, e.pair)
        )

    def top(self, k: int) -> List[PairEvidence]:
        """The ``k`` highest-ranked pairs."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self.ranked()[:k]

    def resolve(self, certainty: float = 0.0) -> List[Pair]:
        """Certainty-threshold query: pairs ranking strictly above it.

        This is the tunable Web-query knob of Section 4.2 — lowering
        ``certainty`` returns a larger, less certain response.
        """
        return [
            entry.pair for entry in self.ranked() if entry.ranking_key > certainty
        ]

    def entities(
        self, certainty: float = 0.0, include_singletons: bool = False
    ) -> List[FrozenSet[int]]:
        """Entity clusters at a certainty level (connected components).

        With ``include_singletons`` every known record appears, matching
        the model's requirement that clusters cover all of T.
        """
        seeds: Optional[Set[int]] = None
        if include_singletons:
            seeds = set()
            for a, b in self._evidence:
                seeds.add(a)
                seeds.add(b)
        return connected_components(self.resolve(certainty), seeds=seeds)

    # -- evaluation ---------------------------------------------------------------

    def evaluate(
        self, gold: GoldStandard, certainty: float = 0.0
    ) -> PairQuality:
        """Pair quality of the crisp resolution at a certainty level."""
        return gold.evaluate(self.resolve(certainty))

    def sweep(
        self, gold: GoldStandard, thresholds: Iterable[float]
    ) -> List[Tuple[float, PairQuality]]:
        """Quality across certainty levels — the accuracy/size tradeoff."""
        return [
            (threshold, self.evaluate(gold, threshold))
            for threshold in thresholds
        ]

    # -- persistence ------------------------------------------------------------

    def to_csv(self, path: Union[str, Path], certainty: float = 0.0) -> int:
        """Write the ranked pairs above ``certainty`` as CSV; returns rows.

        This is *the* ranked artifact of the system — the format the
        CLI emits, the determinism suite compares byte-for-byte, and
        the chaos harness diffs after a resume.
        """
        written = 0
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["book_id_a", "book_id_b", "similarity", "confidence"]
            )
            for evidence in self.ranked():
                if evidence.ranking_key <= certainty:
                    continue
                writer.writerow([
                    evidence.pair[0], evidence.pair[1],
                    f"{evidence.similarity:.4f}",
                    "" if evidence.confidence is None
                    else f"{evidence.confidence:.4f}",
                ])
                written += 1
        return written

    def to_json(self, path: Union[str, Path]) -> None:
        """Persist the resolution (the probabilistic DB of Figure 4)."""
        payload = {
            "n_records": self.n_records,
            "degraded": self.degraded,
            "evidence": [
                {
                    "pair": list(evidence.pair),
                    "similarity": evidence.similarity,
                    "confidence": evidence.confidence,
                    "same_source": evidence.same_source,
                }
                for evidence in self.ranked()
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=1))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "ResolutionResult":
        """Load a resolution previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        evidence = [
            PairEvidence(
                pair=tuple(entry["pair"]),
                similarity=entry["similarity"],
                confidence=entry.get("confidence"),
                same_source=entry.get("same_source", False),
            )
            for entry in payload["evidence"]
        ]
        return cls(
            evidence,
            n_records=payload.get("n_records", 0),
            degraded=payload.get("degraded", False),
        )
