"""Incremental resolution: absorbing newly arriving reports.

Yad Vashem keeps receiving Pages of Testimony (Section 2 counts 30,000 a
year through the 1990s), so a deployed system cannot re-block 6.5M
records per arrival. :class:`IncrementalResolver` runs the full pipeline
once, then handles each new report with an index-driven candidate search
that mirrors MFIBlocks' semantics without re-mining:

* candidate records are those sharing at least ``min_shared_items``
  items with the new report (the minsup=2 analogue of an MFI key);
* the neighborhood is capped at ``ng * max_minsup`` like the SN
  constraint;
* pair similarity comes from the same block scorer, and the trained
  ADTree (when present) re-ranks and filters exactly as in the batch
  pipeline.

The resulting evidence is merged into the live resolution, so certainty
queries immediately see the new record.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.classify.training import PairClassifier
from repro.core.config import PipelineConfig
from repro.core.pipeline import UncertainERPipeline
from repro.core.resolution import PairEvidence, ResolutionResult
from repro.records.dataset import Dataset
from repro.records.itembag import Item, record_to_items
from repro.records.schema import VictimRecord
from repro.similarity.features import extract_features

__all__ = ["IncrementalResolver"]

Pair = Tuple[int, int]


class IncrementalResolver:
    """Maintains a live resolution as new reports arrive."""

    def __init__(
        self,
        dataset: Dataset,
        config: Optional[PipelineConfig] = None,
        classifier: Optional[PairClassifier] = None,
        min_shared_items: int = 2,
        min_pair_similarity: float = 0.12,
    ) -> None:
        if min_shared_items < 1:
            raise ValueError(
                f"min_shared_items must be >= 1, got {min_shared_items}"
            )
        if not 0.0 <= min_pair_similarity <= 1.0:
            raise ValueError(
                f"min_pair_similarity must be in [0, 1], got {min_pair_similarity}"
            )
        self.config = config or PipelineConfig()
        self.classifier = classifier
        self.min_shared_items = min_shared_items
        #: Pair-similarity floor standing in for the block-score (CS)
        #: pruning a full MFIBlocks run would apply.
        self.min_pair_similarity = min_pair_similarity
        self._scorer = self.config.scorer()

        self._records: Dict[int, VictimRecord] = {
            record.book_id: record for record in dataset
        }
        self._item_bags: Dict[int, FrozenSet[Item]] = dict(dataset.item_bags)
        self._index: Dict[Item, Set[int]] = {}
        for rid, items in self._item_bags.items():
            for item in items:
                self._index.setdefault(item, set()).add(rid)

        pipeline = UncertainERPipeline(self.config)
        if self.config.classify and classifier is None:
            raise ValueError(
                "classify=True requires a pre-trained classifier for "
                "incremental operation"
            )
        initial = pipeline.run(dataset, classifier=classifier)
        self._evidence: Dict[Pair, PairEvidence] = {
            evidence.pair: evidence for evidence in initial
        }

    # -- public API ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def resolution(self) -> ResolutionResult:
        """The live resolution over all records seen so far."""
        return ResolutionResult(
            self._evidence.values(), n_records=len(self._records)
        )

    def add_record(self, record: VictimRecord) -> List[PairEvidence]:
        """Absorb one new report; returns the evidence it produced.

        Failed adds are atomic. The method is structured
        validate-then-commit: every raise (duplicate ``book_id``,
        unfitted classifier, scoring failure) happens before the first
        store mutation, so after an exception the resolver is exactly
        as it was — record count, item index, and live evidence all
        unchanged — and the same record can be retried once the cause
        is fixed.
        """
        # Phase 1: validate — no store mutation past this point until
        # _commit, so any raise leaves the resolver untouched.
        if record.book_id in self._records:
            raise ValueError(f"duplicate book_id: {record.book_id}")
        if (
            self.config.classify
            and self.classifier is not None
            and self.classifier.model is None
        ):
            raise RuntimeError("classifier is not fitted")

        # Phase 2: score against the current store (read-only).
        items = record_to_items(record)
        produced = self._score_candidates(record, items)

        # Phase 3: commit record, items, and surviving evidence together.
        self._commit(record, items, produced)
        return produced

    def _score_candidates(
        self, record: VictimRecord, items: FrozenSet[Item]
    ) -> List[PairEvidence]:
        """Evidence the new record produces against the current store.

        Read-only with respect to the resolver state: the atomicity of
        :meth:`add_record` depends on it.
        """
        produced: List[PairEvidence] = []
        for rid in self._candidates(items):
            if (
                self.config.same_source_discard
                and self._records[rid].source.key == record.source.key
            ):
                continue
            pair = (min(rid, record.book_id), max(rid, record.book_id))
            similarity = self._scorer.pair_similarity(
                items, self._item_bags[rid]
            )
            if similarity < self.min_pair_similarity:
                continue
            confidence = None
            if self.classifier is not None and self.config.classify:
                model = self.classifier.model
                if model is None:
                    raise RuntimeError("classifier is not fitted")
                vector = extract_features(self._records[rid], record)
                confidence = model.score(vector)
                if confidence <= self.config.classifier_threshold:
                    continue
            evidence = PairEvidence(
                pair=pair,
                similarity=similarity,
                confidence=confidence,
                same_source=(
                    self._records[rid].source.key == record.source.key
                ),
            )
            produced.append(evidence)
        return produced

    def _commit(
        self,
        record: VictimRecord,
        items: FrozenSet[Item],
        produced: List[PairEvidence],
    ) -> None:
        """Register the record, its items, and the surviving evidence."""
        self._records[record.book_id] = record
        self._item_bags[record.book_id] = items
        for item in items:
            self._index.setdefault(item, set()).add(record.book_id)
        for evidence in produced:
            current = self._evidence.get(evidence.pair)
            if current is None or evidence.ranking_key > current.ranking_key:
                self._evidence[evidence.pair] = evidence

    # -- internals ---------------------------------------------------------------

    def _candidates(self, items: FrozenSet[Item]) -> List[int]:
        """Records sharing enough items, capped like the SN constraint."""
        shared: Dict[int, int] = {}
        for item in items:
            for rid in self._index.get(item, ()):
                shared[rid] = shared.get(rid, 0) + 1
        eligible = [
            (count, rid)
            for rid, count in shared.items()
            if count >= self.min_shared_items
        ]
        eligible.sort(key=lambda entry: (-entry[0], entry[1]))
        cap = max(1, math.floor(self.config.ng * self.config.max_minsup))
        return [rid for _count, rid in eligible[:cap]]
