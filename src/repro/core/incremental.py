"""Incremental resolution: absorbing newly arriving reports.

Yad Vashem keeps receiving Pages of Testimony (Section 2 counts 30,000 a
year through the 1990s), so a deployed system cannot re-block 6.5M
records per arrival. :class:`IncrementalResolver` runs the full pipeline
once, then handles new reports with an index-driven candidate search
that mirrors MFIBlocks' semantics without re-mining:

* candidate records are those sharing at least ``min_shared_items``
  items with the new report (the minsup=2 analogue of an MFI key);
* the neighborhood is capped at ``ng * max_minsup`` like the SN
  constraint;
* pair similarity comes from the same block scorer, and the trained
  ADTree (when present) re-ranks and filters exactly as in the batch
  pipeline.

The resulting evidence is merged into the live resolution, so certainty
queries immediately see the new record.

Streaming ingestion goes through :meth:`IncrementalResolver.add_records`
— the batched, durable write path (``docs/RESILIENCE.md``):

* **atomic-at-the-batch**: validation (duplicate ids, per the
  :class:`~repro.resilience.quarantine.QuarantinePolicy`) and scoring
  finish before the first store mutation, so a raise anywhere leaves
  the resolver untouched and the batch retryable;
* **dirty-block scoring**: only the inverted-index postings for the
  batch's own item signatures are consulted — candidate retrieval cost
  scales with the items the batch dirties, never with corpus size (the
  append-only, signature-keyed ingest shape of "Scalable ER Using
  Probabilistic Signatures", PAPERS.md);
* **durability** (optional): with a
  :class:`~repro.resilience.wal.WriteAheadLog` attached, every batch is
  logged begin → apply → commit; :meth:`IncrementalResolver.recover`
  replays the committed prefix to a byte-identical resolution and
  reports what a crash dropped.

Batching is semantics-free by construction: records inside a batch are
scored in input order against the store *plus* the earlier records of
the same batch (a staged overlay), so ``add_records(batch)`` produces
exactly the state of the equivalent sequence of :meth:`add_record`
calls — the property the WAL replay and the chaos scenarios pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.classify.training import PairClassifier
from repro.core.config import PipelineConfig
from repro.core.pipeline import UncertainERPipeline
from repro.core.resolution import PairEvidence, ResolutionResult
from repro.records.dataset import Dataset, record_from_dict, record_to_dict
from repro.records.itembag import Item, record_to_items
from repro.records.schema import VictimRecord
from repro.resilience.checkpoints import chain_fingerprint
from repro.resilience.quarantine import Quarantine, QuarantinePolicy
from repro.resilience.wal import WriteAheadLog
from repro.similarity.features import extract_features

__all__ = ["BatchResult", "IncrementalResolver", "RecoveryReport"]

Pair = Tuple[int, int]


@dataclass(frozen=True)
class BatchResult:
    """What one :meth:`IncrementalResolver.add_records` call did."""

    #: WAL batch id (also assigned without a WAL, for symmetry).
    batch_id: int
    #: ``book_id`` of every record committed, in input order.
    added: Tuple[int, ...]
    #: Rows shunted to quarantine instead of committed.
    quarantined: int
    #: Evidence rows the batch produced (before max-merge dedup).
    produced: Tuple[PairEvidence, ...]
    #: Distinct item signatures the batch dirtied (its invalidation set).
    dirty_items: int
    #: Candidate records pulled from the dirty postings and scored.
    candidates_scored: int


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`IncrementalResolver.recover` replayed and dropped."""

    batches_replayed: int
    records_replayed: int
    #: Batch ids whose ``begin`` was logged but whose ``commit`` never
    #: landed — the in-flight work a crash legitimately loses.
    dropped_batches: Tuple[int, ...]
    dropped_records: int
    #: Bytes physically truncated from the log (torn tail + uncommitted).
    torn_tail_bytes: int


class IncrementalResolver:
    """Maintains a live resolution as new reports arrive."""

    def __init__(
        self,
        dataset: Dataset,
        config: Optional[PipelineConfig] = None,
        classifier: Optional[PairClassifier] = None,
        min_shared_items: int = 2,
        min_pair_similarity: float = 0.12,
        wal: Optional[WriteAheadLog] = None,
        _allow_wal_history: bool = False,
    ) -> None:
        if min_shared_items < 1:
            raise ValueError(
                f"min_shared_items must be >= 1, got {min_shared_items}"
            )
        if not 0.0 <= min_pair_similarity <= 1.0:
            raise ValueError(
                f"min_pair_similarity must be in [0, 1], got {min_pair_similarity}"
            )
        self.config = config or PipelineConfig()
        self.classifier = classifier
        self.min_shared_items = min_shared_items
        #: Pair-similarity floor standing in for the block-score (CS)
        #: pruning a full MFIBlocks run would apply.
        self.min_pair_similarity = min_pair_similarity
        self._scorer = self.config.scorer()

        self._records: Dict[int, VictimRecord] = {
            record.book_id: record for record in dataset
        }
        self._item_bags: Dict[int, FrozenSet[Item]] = dict(dataset.item_bags)
        self._index: Dict[Item, Set[int]] = {}
        for rid, items in self._item_bags.items():
            for item in items:
                self._index.setdefault(item, set()).add(rid)

        pipeline = UncertainERPipeline(self.config)
        if self.config.classify and classifier is None:
            raise ValueError(
                "classify=True requires a pre-trained classifier for "
                "incremental operation"
            )
        initial = pipeline.run(dataset, classifier=classifier)
        self._evidence: Dict[Pair, PairEvidence] = {
            evidence.pair: evidence for evidence in initial
        }

        self.wal = wal
        self._replayed_batches = 0
        self._replayed_records = 0
        if wal is not None:
            wal.ensure_base(self._base_fingerprint(dataset))
            if wal.committed_batches() and not _allow_wal_history:
                raise ValueError(
                    "WAL already holds committed batches; use "
                    "IncrementalResolver.recover() to replay them"
                )
            self._next_batch_id = wal.next_batch_id
        else:
            self._next_batch_id = 0

    # -- public API ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, book_id: int) -> bool:
        return book_id in self._records

    def resolution(self) -> ResolutionResult:
        """The live resolution over all records seen so far."""
        return ResolutionResult(
            self._evidence.values(), n_records=len(self._records)
        )

    def add_record(self, record: VictimRecord) -> List[PairEvidence]:
        """Absorb one new report; returns the evidence it produced.

        Failed adds are atomic. The method is structured
        validate-then-commit: every raise (duplicate ``book_id``,
        unfitted classifier, scoring failure) happens before the first
        store mutation, so after an exception the resolver is exactly
        as it was — record count, item index, and live evidence all
        unchanged — and the same record can be retried once the cause
        is fixed. A single add is just a batch of one, so a WAL-backed
        resolver logs it durably like any other batch.
        """
        result = self.add_records([record])
        return list(result.produced)

    def add_records(
        self,
        records: Sequence[VictimRecord],
        policy: QuarantinePolicy = QuarantinePolicy.FAIL_FAST,
        quarantine: Optional[Quarantine] = None,
        source: str = "<batch>",
    ) -> BatchResult:
        """Absorb a batch of reports atomically; the streaming write path.

        Validation happens first: a record whose ``book_id`` already
        exists (in the store or earlier in the batch) is rejected. Under
        ``FAIL_FAST`` that raises before any mutation; under
        ``QUARANTINE`` (and ``REPAIR``, which degrades to it — parsed
        records have no per-cell repair story, mirroring
        :meth:`Dataset.from_json`) the row lands in ``quarantine`` and
        the rest of the batch proceeds.

        With a WAL attached, the surviving rows are logged (``begin``)
        before the in-memory apply and marked durable (``commit``)
        after it; a crash between the two drops the whole batch on
        recovery — atomic-at-the-batch, never a torn half-batch.
        """
        if (
            self.config.classify
            and self.classifier is not None
            and self.classifier.model is None
        ):
            raise RuntimeError("classifier is not fitted")
        quarantine = quarantine if quarantine is not None else Quarantine()
        accepted: List[VictimRecord] = []
        staged_ids: Set[int] = set()
        quarantined = 0
        for ordinal, record in enumerate(records, start=1):
            if record.book_id in self._records or record.book_id in staged_ids:
                if policy is QuarantinePolicy.FAIL_FAST:
                    raise ValueError(f"duplicate book_id: {record.book_id}")
                quarantine.record(
                    source,
                    ordinal,
                    "book_id",
                    f"duplicate book_id: {record.book_id}",
                    record_to_dict(record),
                )
                quarantined += 1
                continue
            staged_ids.add(record.book_id)
            accepted.append(record)

        if not accepted:
            return BatchResult(
                batch_id=self._next_batch_id,
                added=(),
                quarantined=quarantined,
                produced=(),
                dirty_items=0,
                candidates_scored=0,
            )

        batch_id = self._next_batch_id
        if self.wal is not None:
            self.wal.append_begin(
                batch_id, [record_to_dict(record) for record in accepted]
            )
        result = self._apply_batch(batch_id, accepted, quarantined)
        if self.wal is not None:
            self.wal.append_commit(batch_id)
        self._next_batch_id = batch_id + 1
        return result

    @classmethod
    def recover(
        cls,
        wal_dir: Union[str, Path],
        dataset: Dataset,
        config: Optional[PipelineConfig] = None,
        classifier: Optional[PairClassifier] = None,
        min_shared_items: int = 2,
        min_pair_similarity: float = 0.12,
        fsync: bool = True,
    ) -> Tuple["IncrementalResolver", RecoveryReport]:
        """Rebuild a WAL-backed resolver to its last committed state.

        ``dataset`` must be the same base snapshot the log was bound to
        (the meta fingerprint chains its content hash with the config
        echo — PR 4's checkpoint identity rule); a mismatch raises
        :class:`~repro.resilience.wal.WalError` instead of replaying
        into the wrong corpus. Opening the log truncates torn tails and
        uncommitted begins; the surviving committed batches are then
        replayed through the exact scoring path that produced them, so
        the recovered ranked output is byte-identical to the
        uninterrupted run's. The report says what was dropped — a
        recovery that loses work must never look like one that didn't.
        """
        wal = WriteAheadLog(wal_dir, fsync=fsync)
        resolver = cls(
            dataset,
            config,
            classifier,
            min_shared_items=min_shared_items,
            min_pair_similarity=min_pair_similarity,
            wal=wal,
            _allow_wal_history=True,
        )
        replayed_records = 0
        for batch in wal.committed_batches():
            records = [record_from_dict(dict(entry)) for entry in batch.records]
            resolver._apply_batch(batch.batch_id, records)
            replayed_records += len(records)
        resolver._next_batch_id = wal.next_batch_id
        resolver._replayed_batches = len(wal.committed_batches())
        resolver._replayed_records = replayed_records
        report = RecoveryReport(
            batches_replayed=resolver._replayed_batches,
            records_replayed=replayed_records,
            dropped_batches=tuple(wal.recovery.uncommitted_batches),
            dropped_records=wal.recovery.uncommitted_records,
            torn_tail_bytes=wal.recovery.torn_tail_bytes,
        )
        return resolver, report

    def wal_counters(self) -> Dict[str, int]:
        """The run report's ``resilience.wal`` block (``{}`` without a WAL)."""
        if self.wal is None:
            return {}
        counters = self.wal.counters()
        counters["replayed"] = self._replayed_batches
        return counters

    # -- batch machinery ---------------------------------------------------------

    def _apply_batch(
        self,
        batch_id: int,
        accepted: Sequence[VictimRecord],
        quarantined: int = 0,
    ) -> BatchResult:
        """Score then commit ``accepted`` (already validated) as one unit.

        Scoring is read-only against the store; records see earlier
        batch members through a staged overlay, which keeps the result
        identical to sequential single adds. Only after every record is
        scored does the commit loop mutate the resolver, so a scoring
        failure anywhere aborts the batch with the store untouched —
        the in-memory half of atomic-at-the-batch. This replays
        committed WAL batches too, hence no WAL writes here.
        """
        staged_records: Dict[int, VictimRecord] = {}
        staged_bags: Dict[int, FrozenSet[Item]] = {}
        staged_index: Dict[Item, Set[int]] = {}
        produced_all: List[PairEvidence] = []
        dirty: Set[Item] = set()
        candidates_scored = 0
        for record in accepted:
            items = record_to_items(record)
            dirty |= items
            candidates = self._candidates(items, staged_index)
            candidates_scored += len(candidates)
            produced_all.extend(
                self._score_candidates(
                    record, items, candidates, staged_records, staged_bags
                )
            )
            staged_records[record.book_id] = record
            staged_bags[record.book_id] = items
            for item in items:
                staged_index.setdefault(item, set()).add(record.book_id)

        for record in accepted:
            rid = record.book_id
            self._records[rid] = record
            self._item_bags[rid] = staged_bags[rid]
            for item in staged_bags[rid]:
                self._index.setdefault(item, set()).add(rid)
        for evidence in produced_all:
            current = self._evidence.get(evidence.pair)
            if current is None or evidence.ranking_key > current.ranking_key:
                self._evidence[evidence.pair] = evidence
        return BatchResult(
            batch_id=batch_id,
            added=tuple(record.book_id for record in accepted),
            quarantined=quarantined,
            produced=tuple(produced_all),
            dirty_items=len(dirty),
            candidates_scored=candidates_scored,
        )

    def _base_fingerprint(self, dataset: Dataset) -> str:
        """Identity of the base snapshot a WAL binds to (PR 4 chain)."""
        return chain_fingerprint(
            None,
            "wal-base",
            {
                "corpus": dataset.content_fingerprint(),
                "config": self.config.to_echo(),
                "min_shared_items": self.min_shared_items,
                "min_pair_similarity": self.min_pair_similarity,
            },
        )

    def _score_candidates(
        self,
        record: VictimRecord,
        items: FrozenSet[Item],
        candidates: Iterable[int],
        staged_records: Optional[Mapping[int, VictimRecord]] = None,
        staged_bags: Optional[Mapping[int, FrozenSet[Item]]] = None,
    ) -> List[PairEvidence]:
        """Evidence the new record produces against store + staged overlay.

        Read-only with respect to the resolver state: the atomicity of
        :meth:`add_record` / :meth:`add_records` depends on it.
        """
        produced: List[PairEvidence] = []
        for rid in candidates:
            other = self._records.get(rid)
            if other is None and staged_records is not None:
                other = staged_records[rid]
            assert other is not None  # candidates come from the indexes
            other_bag = self._item_bags.get(rid)
            if other_bag is None and staged_bags is not None:
                other_bag = staged_bags[rid]
            assert other_bag is not None
            if (
                self.config.same_source_discard
                and other.source.key == record.source.key
            ):
                continue
            pair = (min(rid, record.book_id), max(rid, record.book_id))
            similarity = self._scorer.pair_similarity(items, other_bag)
            if similarity < self.min_pair_similarity:
                continue
            confidence = None
            if self.classifier is not None and self.config.classify:
                model = self.classifier.model
                if model is None:
                    raise RuntimeError("classifier is not fitted")
                vector = extract_features(other, record)
                confidence = model.score(vector)
                if confidence <= self.config.classifier_threshold:
                    continue
            evidence = PairEvidence(
                pair=pair,
                similarity=similarity,
                confidence=confidence,
                same_source=(other.source.key == record.source.key),
            )
            produced.append(evidence)
        return produced

    # -- internals ---------------------------------------------------------------

    def _candidates(
        self,
        items: FrozenSet[Item],
        staged_index: Optional[Mapping[Item, Set[int]]] = None,
    ) -> List[int]:
        """Records sharing enough items, capped like the SN constraint.

        Only the postings for ``items`` — the blocks this record
        dirties — are read; the rest of the index is never touched.
        """
        shared: Dict[int, int] = {}
        for item in items:
            for rid in self._index.get(item, ()):
                shared[rid] = shared.get(rid, 0) + 1
            if staged_index is not None:
                for rid in staged_index.get(item, ()):
                    shared[rid] = shared.get(rid, 0) + 1
        eligible = [
            (count, rid)
            for rid, count in shared.items()
            if count >= self.min_shared_items
        ]
        eligible.sort(key=lambda entry: (-entry[0], entry[1]))
        cap = max(1, math.floor(self.config.ng * self.config.max_minsup))
        return [rid for _count, rid in eligible[:cap]]
