"""Pipeline configuration: the Section 6.5 configurable options.

One dataclass captures every experimental condition of Table 9 plus the
NG / MaxMinSup sweep of Figures 15-16, so a benchmark row is literally
one :class:`PipelineConfig` value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.blocking.mfiblocks import MFIBlocksConfig
from repro.blocking.scoring import (
    DEFAULT_EXPERT_WEIGHTS,
    BlockScorer,
    ScoringMethod,
)
from repro.resilience.budgets import StageBudget
from repro.similarity.items import GeoLookup

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end uncertain-ER configuration.

    Blocking knobs:

    ``max_minsup`` / ``ng``
        Algorithm 1 parameters (Figures 15-16 sweep them).
    ``prune_fraction``
        Optional most-frequent-item pruning before mining.
    ``sn_mode``
        Sparse-neighborhood enforcement ("skip" or "threshold").

    The binary conditions of Table 9:

    ``expert_weighting``
        Weight block scores by item type with expert-derived weights.
    ``expert_sim``
        Use the Eq.-1 custom item-similarity (ExpertSim) for block
        scoring instead of (weighted) Jaccard. Composes with
        ``expert_weighting`` as in the paper's experiment order.
    ``same_source_discard``
        Drop candidate pairs whose records share a source (SameSrc).
    ``classify``
        Filter and re-rank pairs with a trained ADTree (Cls); pairs with
        confidence <= ``classifier_threshold`` are discarded.

    Resilience:

    ``blocking_budget``
        Optional :class:`~repro.resilience.budgets.StageBudget` bounding
        the MFIBlocks descent and its FPMax mining. Exhaustion yields a
        best-so-far blocking and a ``degraded=True`` resolution instead
        of an unbounded run (see ``docs/RESILIENCE.md``).
    """

    max_minsup: int = 5
    ng: float = 3.0
    prune_fraction: Optional[float] = None
    sn_mode: str = "skip"
    expert_weighting: bool = False
    expert_sim: bool = False
    same_source_discard: bool = False
    classify: bool = False
    classifier_threshold: float = 0.0
    geo_lookup: Optional[GeoLookup] = None
    blocking_budget: Optional[StageBudget] = None

    def scorer(self) -> BlockScorer:
        """Build the block scorer implied by the condition flags."""
        if self.expert_sim:
            method = ScoringMethod.EXPERT
        elif self.expert_weighting:
            method = ScoringMethod.WEIGHTED
        else:
            method = ScoringMethod.UNIFORM
        weights = dict(DEFAULT_EXPERT_WEIGHTS) if self.expert_weighting else None
        return BlockScorer(method=method, weights=weights,
                           geo_lookup=self.geo_lookup)

    def blocking_config(self) -> MFIBlocksConfig:
        """Build the MFIBlocks configuration for this pipeline run."""
        return MFIBlocksConfig(
            max_minsup=self.max_minsup,
            ng=self.ng,
            scoring=self.scorer(),
            prune_fraction=self.prune_fraction,
            sn_mode=self.sn_mode,
            budget=self.blocking_budget,
        )

    def with_ng(self, ng: float) -> "PipelineConfig":
        """Copy with a different NG (sweep helper)."""
        return replace(self, ng=ng)

    def to_echo(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the configuration for run reports.

        Non-serializable members (the geo lookup callable) are reduced
        to a presence flag; everything else is echoed verbatim so a
        report fully identifies the condition that produced it.
        """
        return {
            "label": self.describe(),
            "max_minsup": self.max_minsup,
            "ng": self.ng,
            "prune_fraction": self.prune_fraction,
            "sn_mode": self.sn_mode,
            "expert_weighting": self.expert_weighting,
            "expert_sim": self.expert_sim,
            "same_source_discard": self.same_source_discard,
            "classify": self.classify,
            "classifier_threshold": self.classifier_threshold,
            "geo_lookup": self.geo_lookup is not None,
            "blocking_budget": (
                None if self.blocking_budget is None
                else self.blocking_budget.to_echo()
            ),
        }

    def describe(self) -> str:
        """Short condition label in the Table 9 style."""
        flags = []
        if self.expert_weighting:
            flags.append("ExpertWeighting")
        if self.expert_sim:
            flags.append("ExpertSim")
        if self.same_source_discard:
            flags.append("SameSrc")
        if self.classify:
            flags.append("Cls")
        label = " + ".join(flags) if flags else "Base"
        return f"{label} (MaxMinSup={self.max_minsup}, NG={self.ng})"
