"""Multi-granularity resolution: person vs. nuclear family entities.

Section 4.1: "by allowing a looser compact set setting and denser
neighborhoods, entities can be broadened from a single individual to a
granularity of nuclear family and broader social units." The Capelluto
children (Figure 13) are false positives for person-level ER — siblings
sharing last name, father, mother, and Rhodes — but exactly the pairs a
family-narrative researcher wants kept.

:func:`family_config` derives a loosened configuration from a base
person-level one (denser neighborhoods via a larger NG, no same-source
discard — sibling testimonies often share the submitting relative), and
:func:`family_gold_standard` builds the family-level truth from the
generator's ground-truth profiles.
"""

from __future__ import annotations

import enum
from dataclasses import replace
from typing import Dict, Iterable, List, Tuple

from repro.core.config import PipelineConfig
from repro.datagen.generator import PersonProfile
from repro.evaluation.goldstandard import GoldStandard
from repro.records.dataset import Dataset

__all__ = [
    "GranularityLevel",
    "family_config",
    "family_gold_standard",
    "config_for",
]

Pair = Tuple[int, int]


class GranularityLevel(str, enum.Enum):
    """Resolution granularity a researcher may ask for."""

    PERSON = "person"
    FAMILY = "family"


def family_config(
    base: PipelineConfig, ng_factor: float = 1.75
) -> PipelineConfig:
    """Loosen a person-level config for family-level entities.

    * NG grows by ``ng_factor`` — denser neighborhoods, more overlap;
    * SameSrc discard is turned off — the Capelluto siblings' pages all
      came from their aunt, and SameSrc would erase exactly the familial
      evidence we want (Section 6.5's discussion of Figure 13);
    * the classifier filter is disabled: the ADTree was trained to
      separate *persons* and would veto sibling pairs.
    """
    if ng_factor < 1.0:
        raise ValueError(f"ng_factor must be >= 1, got {ng_factor}")
    return replace(
        base,
        ng=base.ng * ng_factor,
        same_source_discard=False,
        classify=False,
    )


def config_for(
    level: GranularityLevel, base: PipelineConfig
) -> PipelineConfig:
    """Resolve the config to use at a granularity level."""
    if level is GranularityLevel.PERSON:
        return base
    return family_config(base)


def family_gold_standard(
    dataset: Dataset, persons: Iterable[PersonProfile]
) -> GoldStandard:
    """Gold pairs at family granularity: records of the same family.

    Person-level matches are included (a person is in their own family),
    so family recall is measured against a strictly larger pair set.
    """
    family_of: Dict[int, int] = {
        person.person_id: person.family_id for person in persons
    }
    by_family: Dict[int, List[int]] = {}
    for record in dataset:
        if record.person_id is None:
            continue
        family_id = family_of.get(record.person_id)
        if family_id is None:
            continue
        by_family.setdefault(family_id, []).append(record.book_id)

    pairs = set()
    for rids in by_family.values():
        rids.sort()
        for index, a in enumerate(rids):
            for b in rids[index + 1:]:
                pairs.add((a, b))
    return GoldStandard(frozenset(pairs))
