"""Command-line interface: generate corpora, analyze, resolve, narrate.

Usage (after ``pip install -e .``)::

    python -m repro.cli generate --persons 400 --communities italy \
        --out corpus.json
    python -m repro.cli analyze corpus.json
    python -m repro.cli resolve corpus.json --ng 3.5 --expert-weighting \
        --classify --certainty 0.5 --out matches.csv \
        --trace trace.jsonl --report report.json
    python -m repro.cli profile corpus.json --ng 3.5 --expert-weighting
    python -m repro.cli narratives corpus.json --top 5

The ``resolve`` command mirrors the Section 6.5 conditions: expert
weighting, ExpertSim, SameSrc, and ADTree classification (trained on
simulated expert tags) are all switchable flags. ``--trace`` streams
schema-versioned JSONL events and ``--report`` persists the structured
:class:`~repro.obs.report.RunReport`; ``profile`` prints the per-stage
time/counter table (see ``docs/OBSERVABILITY.md``).

``resolve`` and ``profile`` also expose the resilience layer
(``docs/RESILIENCE.md``): ``--checkpoint-dir``/``--resume`` for
stage-level checkpoint/resume, ``--on-bad-row``/``--quarantine-out``
for malformed-row quarantine, and ``--budget-iterations`` /
``--budget-seconds`` for graceful degradation under stage budgets.
``chaos`` runs the seeded fault-injection scenarios end to end.
``ingest`` streams arrival batches into a resolved base through the
WAL-backed incremental resolver (``--wal-dir``/``--recover``), and
``checkpoint gc`` prunes stale checkpoint directories.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import PipelineConfig, UncertainERPipeline
from repro.datagen import (
    ExpertTagger,
    build_corpus,
    build_gazetteer,
    simplify_tags,
)
from repro.datagen.names import COMMUNITIES
from repro.evaluation import GoldStandard, format_table
from repro.graph import ranked_narratives
from repro.obs import JsonlSink, Tracer
from repro.obs.tracer import NULL_TRACER
from repro.parallel import Executor, make_executor
from repro.records import Dataset
from repro.records.io import read_csv, write_csv
from repro.records.patterns import item_type_prevalence, pattern_histogram
from repro.resilience import (
    CheckpointStore,
    Quarantine,
    QuarantinePolicy,
    StageBudget,
)
from repro.version import repro_version

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-source uncertain entity resolution toolkit",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {repro_version()}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic Names-Project corpus"
    )
    generate.add_argument("--persons", type=int, default=400)
    generate.add_argument(
        "--communities", nargs="+", default=["italy"],
        choices=list(COMMUNITIES),
    )
    generate.add_argument("--seed", type=int, default=17)
    generate.add_argument("--mv-reports", type=int, default=0)
    generate.add_argument("--out", type=Path, required=True)

    analyze = commands.add_parser(
        "analyze", help="data-pattern and prevalence analysis (Fig 11 / Tab 3)"
    )
    analyze.add_argument("corpus", type=Path)

    resolve = commands.add_parser(
        "resolve", help="run the uncertain-ER pipeline"
    )
    resolve.add_argument("corpus", type=Path)
    resolve.add_argument("--max-minsup", type=int, default=5)
    resolve.add_argument("--ng", type=float, default=3.5)
    resolve.add_argument("--expert-weighting", action="store_true")
    resolve.add_argument("--expert-sim", action="store_true")
    resolve.add_argument("--same-src", action="store_true")
    resolve.add_argument("--classify", action="store_true")
    resolve.add_argument("--certainty", type=float, default=0.0)
    resolve.add_argument("--tag-seed", type=int, default=97)
    resolve.add_argument("--out", type=Path, default=None,
                         help="write resolved pairs as CSV")
    resolve.add_argument("--trace", type=Path, default=None,
                         help="stream trace events to this JSONL file")
    resolve.add_argument("--report", type=Path, default=None,
                         help="write the structured run report as JSON")
    _add_parallel_arguments(resolve)
    _add_resilience_arguments(resolve)

    profile = commands.add_parser(
        "profile",
        help="run the pipeline under tracing and print the per-stage "
             "time/counter table",
    )
    profile.add_argument("corpus", type=Path)
    profile.add_argument("--max-minsup", type=int, default=5)
    profile.add_argument("--ng", type=float, default=3.5)
    profile.add_argument("--expert-weighting", action="store_true")
    profile.add_argument("--expert-sim", action="store_true")
    profile.add_argument("--same-src", action="store_true")
    profile.add_argument("--classify", action="store_true")
    profile.add_argument("--tag-seed", type=int, default=97)
    profile.add_argument("--trace", type=Path, default=None,
                         help="also stream trace events to this JSONL file")
    profile.add_argument("--report", type=Path, default=None,
                         help="also write the run report as JSON")
    profile.add_argument("--timeline", action="store_true",
                         help="render the parallel_profile block as "
                              "per-worker lanes plus an overhead-vs-"
                              "compute summary (needs --workers > 1)")
    profile.add_argument("--profile-memory", action="store_true",
                         help="record per-chunk tracemalloc peaks in "
                              "workers (slows compute; timings include "
                              "the allocator hooks)")
    _add_parallel_arguments(profile)
    _add_resilience_arguments(profile)

    narratives = commands.add_parser(
        "narratives", help="print ranked narratives for resolved entities"
    )
    narratives.add_argument("corpus", type=Path)
    narratives.add_argument("--top", type=int, default=5)
    narratives.add_argument("--ng", type=float, default=3.5)

    experiment = commands.add_parser(
        "experiment",
        help="run the Table 9 condition grid against ground truth",
    )
    experiment.add_argument("corpus", type=Path)
    experiment.add_argument("--ng", type=float, nargs="+",
                            default=[3.0, 3.5, 4.0])
    experiment.add_argument("--max-minsup", type=int, default=5)
    experiment.add_argument("--no-classifier", action="store_true",
                            help="skip the Cls conditions")
    experiment.add_argument("--tag-seed", type=int, default=97)

    lint = commands.add_parser(
        "lint",
        help="run the reprolint determinism checks (tools/reprolint)",
    )
    lint.add_argument("paths", nargs="*", type=Path,
                      help="files or directories "
                           "(default: [tool.reprolint] paths)")
    lint.add_argument("--format", choices=("human", "json", "sarif"),
                      default="human")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule codes to run exclusively")
    lint.add_argument("--ignore", default=None,
                      help="comma-separated rule codes to skip")
    lint.add_argument("--statistics", action="store_true",
                      help="append per-rule counts")
    lint.add_argument("--contracts", action="store_true",
                      help="also run the inter-procedural RL100-RL103 "
                           "contract checks")
    lint.add_argument("--parallel-safety", action="store_true",
                      help="also run the RL200-RL205 parallel-safety "
                           "checks (fork/pickle/merge contracts)")
    lint.add_argument("--perf", action="store_true",
                      help="also run the RL300-RL305 performance checks "
                           "over @hot_path functions")
    lint.add_argument("--profile-report", type=Path, default=None,
                      help="RunReport JSON to rank --perf findings by "
                           "measured run-time share")
    lint.add_argument("--min-hot-fraction", type=float, default=None,
                      help="measured share at or above which a --perf "
                           "finding gates (default 0.02)")

    sanitize = commands.add_parser(
        "sanitize",
        help="re-run a small seeded resolution under permuted "
             "PYTHONHASHSEED values and require byte-identical output",
    )
    sanitize.add_argument("--seeds", type=int, default=3,
                          help="number of non-baseline hash seeds "
                               "(default: 3)")
    sanitize.add_argument("--persons", type=int, default=40)
    sanitize.add_argument("--corpus-seed", type=int, default=17)
    sanitize.add_argument("--ng", type=float, default=3.5)
    sanitize.add_argument("--communities", nargs="+", default=["italy"],
                          choices=list(COMMUNITIES))
    sanitize.add_argument("--no-expert-weighting", action="store_true")
    sanitize.add_argument("--diff-out", type=Path, default=None,
                          help="write the first divergence as a unified "
                               "diff to this file")
    sanitize.add_argument("--workers", type=int, default=1,
                          help="run each seeded resolution with this many "
                               "parallel workers (parity with serial is "
                               "part of the check)")
    sanitize.add_argument("--schedule", action="store_true",
                          help="run the adversarial-schedule sanitizer "
                               "instead: permute chunk execution order "
                               "under seeded schedules x worker counts")
    sanitize.add_argument("--schedule-seeds", type=int, default=3,
                          help="adversarial schedule seeds to try "
                               "(default: 3)")
    sanitize.add_argument("--schedule-workers", default="1,2,4",
                          help="comma-separated worker counts swept under "
                               "each schedule seed (default: 1,2,4)")

    chaos = commands.add_parser(
        "chaos",
        help="run the seeded fault-injection scenarios (corrupt rows, "
             "truncated checkpoints, mid-stage crashes, exhausted "
             "budgets) and verify resilience invariants",
    )
    chaos.add_argument("--seed", type=_seed_list, default=[0],
                       help="comma-separated fault seeds (default: 0)")
    chaos.add_argument("--scenario", default="all",
                       choices=("all", "corrupt-rows", "truncated-checkpoint",
                                "crash-resume", "budget", "worker-crash",
                                "crash-mid-batch", "torn-wal"),
                       help="which fault family to inject (default: all)")
    chaos.add_argument("--persons", type=int, default=40)
    chaos.add_argument("--corpus-seed", type=int, default=17)
    chaos.add_argument("--ng", type=float, default=3.5)
    chaos.add_argument("--corrupt-fraction", type=float, default=0.05)
    chaos.add_argument("--artifacts-dir", type=Path, default=None,
                       help="keep quarantine/diff artifacts here "
                            "(default: temporary, removed on success)")

    ingest = commands.add_parser(
        "ingest",
        help="stream arrival batches into a resolved base corpus, "
             "optionally WAL-durable (docs/RESILIENCE.md, Durability)",
    )
    ingest.add_argument("base", type=Path,
                        help="the already-resolved base corpus "
                             "(.json or .csv)")
    ingest.add_argument("arrivals", type=Path,
                        help="newly arriving reports to absorb, in file "
                             "order")
    ingest.add_argument("--batch-size", type=int, default=64,
                        help="records per atomic ingest batch "
                             "(default: 64)")
    ingest.add_argument("--wal-dir", type=Path, default=None,
                        help="write-ahead log directory; makes every "
                             "batch durable (begin/commit logged) and "
                             "crash-recoverable")
    ingest.add_argument("--recover", action="store_true",
                        help="replay the committed batches in --wal-dir "
                             "first (same base corpus and pipeline flags "
                             "as the original run), then continue "
                             "ingesting")
    ingest.add_argument("--no-fsync", action="store_true",
                        help="skip per-append fsync (benchmarking only; "
                             "a crash may lose acknowledged batches)")
    ingest.add_argument("--max-minsup", type=int, default=5)
    ingest.add_argument("--ng", type=float, default=3.5)
    ingest.add_argument("--expert-weighting", action="store_true")
    ingest.add_argument("--expert-sim", action="store_true")
    ingest.add_argument("--same-src", action="store_true")
    ingest.add_argument("--certainty", type=float, default=0.0)
    ingest.add_argument("--out", type=Path, default=None,
                        help="write the final resolved pairs as CSV")
    ingest.add_argument("--trace", type=Path, default=None,
                        help="stream trace events to this JSONL file")
    ingest.add_argument("--report", type=Path, default=None,
                        help="write the structured run report (with the "
                             "resilience.wal block) as JSON")
    ingest.add_argument("--on-bad-row", default="fail",
                        choices=("fail", "quarantine", "repair"),
                        help="malformed or duplicate arrival rows: fail "
                             "fast (default), quarantine, or "
                             "repair-then-quarantine")
    ingest.add_argument("--quarantine-out", type=Path, default=None,
                        help="write quarantined rows as JSONL here")
    # The incremental path needs a pre-trained classifier; the batch
    # flags reuse _pipeline_config, which reads args.classify.
    ingest.set_defaults(classify=False)

    checkpoint = commands.add_parser(
        "checkpoint",
        help="maintain checkpoint directories (docs/RESILIENCE.md)",
    )
    checkpoint_commands = checkpoint.add_subparsers(
        dest="checkpoint_command", required=True
    )
    checkpoint_gc = checkpoint_commands.add_parser(
        "gc",
        help="prune a checkpoint directory to its N newest stages and "
             "delete torn .tmp leftovers",
    )
    checkpoint_gc.add_argument("directory", type=Path)
    checkpoint_gc.add_argument("--keep", type=int, required=True,
                               help="newest checkpoints to keep "
                                    "(0 = remove all)")
    checkpoint_gc.add_argument("--dry-run", action="store_true",
                               help="list what would be removed without "
                                    "deleting anything")

    perf = commands.add_parser(
        "perf",
        help="perf-regression ledger: record benchmark baselines and "
             "diff fresh results against them (docs/OBSERVABILITY.md)",
    )
    perf_commands = perf.add_subparsers(dest="perf_command", required=True)

    record = perf_commands.add_parser(
        "record", help="add/refresh run-report baselines in the ledger"
    )
    record.add_argument("reports", nargs="+", type=Path,
                        help="run-report JSON files "
                             "(e.g. benchmarks/results/*.report.json)")
    record.add_argument("--ledger", type=Path,
                        default=Path("benchmarks/baselines"),
                        help="ledger directory "
                             "(default: benchmarks/baselines)")
    record.add_argument("--note", default="",
                        help="operator note stored with the entries")

    diff = perf_commands.add_parser(
        "diff",
        help="compare a results directory against the committed "
             "baseline ledger; human table + JSON verdict",
    )
    diff.add_argument("--baseline", type=Path,
                      default=Path("benchmarks/baselines"),
                      help="baseline ledger directory "
                           "(default: benchmarks/baselines)")
    diff.add_argument("--current", type=Path,
                      default=Path("benchmarks/results"),
                      help="directory holding fresh <name>.report.json "
                           "files (default: benchmarks/results)")
    diff.add_argument("--threshold", type=float, default=None,
                      help="regression ratio threshold (default: 0.25 "
                           "= 25%% slower flags)")
    diff.add_argument("--strict", action="store_true",
                      help="exit 1 on a regression verdict (default "
                           "warn-only, mirroring --assert-speedup)")
    diff.add_argument("--json", type=Path, default=None, dest="json_out",
                      help="also write the machine-readable verdict "
                           "here (the CI artifact)")

    return parser


def _seed_list(text: str) -> List[int]:
    """Parse ``--seed 0,1,2`` into a list of ints."""
    try:
        return [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from error


def _add_parallel_arguments(command: argparse.ArgumentParser) -> None:
    """The parallel-execution knobs shared by ``resolve`` and ``profile``."""
    command.add_argument(
        "--workers", type=int, default=1,
        help="parallel worker processes for scoring and mining "
             "(default: 1 = serial; output is byte-identical at any "
             "worker count)")
    command.add_argument(
        "--chunk-size", type=int, default=None,
        help="override the one-chunk-per-worker plan with fixed-size "
             "chunks (affects scheduling only, never output)")


def _executor(args: argparse.Namespace) -> Executor:
    """The executor implied by --workers/--chunk-size (serial default)."""
    return make_executor(
        getattr(args, "workers", 1),
        getattr(args, "chunk_size", None),
        profile_memory=getattr(args, "profile_memory", False),
    )


def _add_resilience_arguments(command: argparse.ArgumentParser) -> None:
    """The resilience knobs shared by ``resolve`` and ``profile``."""
    command.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="persist a checkpoint after every pipeline stage here")
    command.add_argument(
        "--resume", action="store_true",
        help="resume from the deepest valid checkpoint in "
             "--checkpoint-dir (output stays byte-identical to a "
             "fresh run)")
    command.add_argument(
        "--on-bad-row", default="fail",
        choices=("fail", "quarantine", "repair"),
        help="malformed ingest rows: fail fast (default), quarantine, "
             "or repair-then-quarantine")
    command.add_argument(
        "--quarantine-out", type=Path, default=None,
        help="write quarantined rows as JSONL here")
    command.add_argument(
        "--budget-iterations", type=int, default=None,
        help="cap blocking/mining iterations; exhaustion degrades "
             "gracefully to best-so-far")
    command.add_argument(
        "--budget-seconds", type=float, default=None,
        help="blocking stage deadline in seconds (wall clock; makes the "
             "run timing-dependent)")


def _load_corpus(
    path: Path,
    policy: QuarantinePolicy = QuarantinePolicy.FAIL_FAST,
    quarantine: Optional[Quarantine] = None,
) -> Dataset:
    """Load a corpus, dispatching on the file suffix (.json or .csv)."""
    if path.suffix.lower() == ".csv":
        return read_csv(path, policy=policy, quarantine=quarantine)
    return Dataset.from_json(path, policy=policy, quarantine=quarantine)


_POLICY_BY_FLAG = {
    "fail": QuarantinePolicy.FAIL_FAST,
    "quarantine": QuarantinePolicy.QUARANTINE,
    "repair": QuarantinePolicy.REPAIR,
}


def _load_corpus_resilient(
    args: argparse.Namespace, tracer: Tracer
) -> Dataset:
    """Load under --on-bad-row, surfacing quarantine counters and JSONL."""
    policy = _POLICY_BY_FLAG[getattr(args, "on_bad_row", "fail")]
    quarantine = Quarantine()
    dataset = _load_corpus(args.corpus, policy=policy, quarantine=quarantine)
    if quarantine.n_quarantined:
        tracer.count("ingest.rows_quarantined", quarantine.n_quarantined)
        lines = ", ".join(
            str(line)
            for line in quarantine.line_numbers(include_repaired=False)
        )
        print(f"quarantined {quarantine.n_quarantined} malformed rows "
              f"(lines {lines})")
    if quarantine.n_repaired:
        tracer.count("ingest.rows_repaired", quarantine.n_repaired)
        print(f"repaired {quarantine.n_repaired} rows")
    quarantine_out = getattr(args, "quarantine_out", None)
    if quarantine_out is not None:
        quarantine.to_jsonl(quarantine_out)
        print(f"wrote quarantine log to {quarantine_out}")
    return dataset


def _save_corpus(dataset: Dataset, path: Path) -> None:
    if path.suffix.lower() == ".csv":
        write_csv(dataset, path)
    else:
        dataset.to_json(path)


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset, persons = build_corpus(
        n_persons=args.persons,
        communities=tuple(args.communities),
        seed=args.seed,
        mv_reports=args.mv_reports,
        name=args.out.stem,
    )
    _save_corpus(dataset, args.out)
    print(f"wrote {len(dataset)} reports about {len(persons)} persons "
          f"to {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    dataset = _load_corpus(args.corpus)
    buckets = pattern_histogram(dataset)
    print(format_table(
        ["records sharing pattern (<=)", "# patterns", "sum of records"],
        [[b.label, b.n_patterns, b.n_records] for b in buckets],
        title=f"Data patterns ({len(dataset)} records)",
    ))
    print()
    print(format_table(
        ["Item Type", "Records", "%"],
        [[label, count, f"{frac:.0%}"]
         for label, count, frac in item_type_prevalence(dataset)],
        title="Item type prevalence",
    ))
    return 0


def _pipeline_config(args: argparse.Namespace) -> PipelineConfig:
    geo_lookup = build_gazetteer().lookup if args.expert_sim else None
    budget = None
    iterations = getattr(args, "budget_iterations", None)
    seconds = getattr(args, "budget_seconds", None)
    if iterations is not None or seconds is not None:
        budget = StageBudget(max_iterations=iterations,
                             deadline_seconds=seconds)
    return PipelineConfig(
        max_minsup=args.max_minsup,
        ng=args.ng,
        expert_weighting=args.expert_weighting,
        expert_sim=args.expert_sim,
        same_source_discard=args.same_src,
        classify=args.classify,
        geo_lookup=geo_lookup,
        blocking_budget=budget,
    )


def _build_tracer(args: argparse.Namespace) -> Tracer:
    """Tracer implied by --trace/--report (the free no-op one otherwise)."""
    trace_path = getattr(args, "trace", None)
    report_path = getattr(args, "report", None)
    if trace_path is None and report_path is None:
        return NULL_TRACER
    sinks = [JsonlSink(trace_path)] if trace_path is not None else []
    return Tracer(sinks=sinks)


def _finish_tracing(
    args: argparse.Namespace, tracer: Tracer, resolution
) -> None:
    """Flush sinks and persist the run report where requested."""
    tracer.close()
    if getattr(args, "trace", None) is not None:
        print(f"wrote trace events to {args.trace}")
    report_path = getattr(args, "report", None)
    if report_path is not None and resolution.report is not None:
        resolution.report.to_json(report_path)
        print(f"wrote run report to {report_path}")


def _checkpoint_store(args: argparse.Namespace) -> Optional[CheckpointStore]:
    directory = getattr(args, "checkpoint_dir", None)
    return None if directory is None else CheckpointStore(directory)


def _cmd_resolve(args: argparse.Namespace) -> int:
    config = _pipeline_config(args)
    tracer = _build_tracer(args)
    dataset = _load_corpus_resilient(args, tracer)
    pipeline = UncertainERPipeline(
        config, tracer=tracer, executor=_executor(args)
    )

    labels = None
    if args.classify:
        blocking = pipeline.block(dataset)
        tagger = ExpertTagger(dataset, seed=args.tag_seed)
        tagged = tagger.tag_pairs(blocking.candidate_pairs)
        labels = simplify_tags(tagged, maybe_as=None)
        print(f"trained on {len(labels)} simulated expert-tagged pairs")

    resolution = pipeline.run(
        dataset, labeled_pairs=labels,
        checkpoints=_checkpoint_store(args), resume=args.resume,
    )
    _finish_tracing(args, tracer, resolution)
    crisp = resolution.resolve(args.certainty)
    print(f"{len(resolution)} ranked pairs; {len(crisp)} above "
          f"certainty {args.certainty}")
    if resolution.degraded:
        print("WARNING: stage budget exhausted; results are best-so-far "
              "(degraded)")

    gold = GoldStandard.from_dataset(dataset)
    if gold.matches:
        quality = resolution.evaluate(gold, args.certainty)
        print(f"quality vs ground truth: precision={quality.precision:.3f} "
              f"recall={quality.recall:.3f} F-1={quality.f1:.3f}")

    if args.out is not None:
        resolution.to_csv(args.out, certainty=args.certainty)
        print(f"wrote {len(crisp)} pairs to {args.out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run the pipeline under tracing and print the per-stage table.

    The observability counterpart of Fig. 12: where does a resolution
    spend its time, per stage, with the stage counters alongside.
    """
    config = _pipeline_config(args)
    tracer = _build_tracer(args)
    if not tracer.enabled:
        tracer = Tracer()
    dataset = _load_corpus_resilient(args, tracer)
    pipeline = UncertainERPipeline(
        config, tracer=tracer, executor=_executor(args)
    )

    labels = None
    if args.classify:
        blocking = pipeline.block(dataset)
        tagger = ExpertTagger(dataset, seed=args.tag_seed)
        labels = simplify_tags(
            tagger.tag_pairs(blocking.candidate_pairs), maybe_as=None
        )

    resolution = pipeline.run(
        dataset, labeled_pairs=labels,
        checkpoints=_checkpoint_store(args), resume=args.resume,
    )
    _finish_tracing(args, tracer, resolution)
    assert resolution.report is not None  # tracer is always enabled here
    print(resolution.report.format_table())
    if args.timeline:
        print()
        print(resolution.report.format_timeline())
    return 0


def _cmd_narratives(args: argparse.Namespace) -> int:
    dataset = _load_corpus(args.corpus)
    pipeline = UncertainERPipeline(
        PipelineConfig(ng=args.ng, expert_weighting=True)
    )
    resolution = pipeline.run(dataset)
    stories = ranked_narratives(dataset, resolution)
    for narrative in stories[: args.top]:
        print(f"[confidence {narrative.confidence:+.2f}] {narrative.text}")
    if not stories:
        print("no multi-report entities found")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.evaluation.experiments import run_conditions

    dataset = _load_corpus(args.corpus)
    gold = GoldStandard.from_dataset(dataset)
    if not gold.matches:
        print("corpus has no ground-truth person ids; cannot evaluate")
        return 1

    labels = None
    if not args.no_classifier:
        pipeline = UncertainERPipeline(
            PipelineConfig(max_minsup=args.max_minsup,
                           ng=max(args.ng), expert_weighting=True)
        )
        blocking = pipeline.block(dataset)
        tagger = ExpertTagger(dataset, seed=args.tag_seed)
        labels = simplify_tags(
            tagger.tag_pairs(blocking.candidate_pairs), maybe_as=None
        )
        print(f"trained conditions use {len(labels)} simulated tags")

    results = run_conditions(
        dataset, gold, labeled_pairs=labels,
        ng_values=tuple(args.ng), max_minsup=args.max_minsup,
        geo_lookup=build_gazetteer().lookup,
    )
    print(format_table(
        ["Condition", "Recall", "Precision", "F-1"],
        [[r.name, r.recall, r.precision, r.f1] for r in results],
        title=(f"Quality under varying conditions "
               f"(avg over NG {tuple(args.ng)}, MaxMinSup={args.max_minsup})"),
    ))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Shell into ``tools.reprolint`` so CLI users get the CI checks locally.

    The ``tools`` package lives in the repository, not in the installed
    distribution: prefer an in-process import (works from a repo
    checkout and in tests), and fall back to ``python -m
    tools.reprolint`` from the repo root when the current process
    cannot see it.
    """
    lint_argv: List[str] = [str(path) for path in args.paths]
    lint_argv += ["--format", args.format]
    if args.select:
        lint_argv += ["--select", args.select]
    if args.ignore:
        lint_argv += ["--ignore", args.ignore]
    if args.statistics:
        lint_argv.append("--statistics")
    if args.contracts:
        lint_argv.append("--contracts")
    if args.parallel_safety:
        lint_argv.append("--parallel-safety")
    if args.perf:
        lint_argv.append("--perf")
    if args.profile_report is not None:
        lint_argv += ["--profile-report", str(args.profile_report)]
    if args.min_hot_fraction is not None:
        lint_argv += ["--min-hot-fraction", str(args.min_hot_fraction)]

    try:
        from tools.reprolint.cli import main as reprolint_main
    except ImportError:
        repo_root = Path(__file__).resolve().parents[2]
        if not (repo_root / "tools" / "reprolint").is_dir():
            print(
                "repro lint: the `tools.reprolint` package is not importable "
                "and no repository checkout was found; run from the repo "
                "root (python -m tools.reprolint)",
                file=sys.stderr,
            )
            return 2
        import subprocess

        completed = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *lint_argv],
            cwd=repo_root,
        )
        return completed.returncode
    return reprolint_main(lint_argv)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    """Delegate to :mod:`repro.sanitize` (hash-order determinism check)."""
    from repro.sanitize import main as sanitize_main

    sanitize_argv: List[str] = [
        "--seeds", str(args.seeds),
        "--persons", str(args.persons),
        "--corpus-seed", str(args.corpus_seed),
        "--ng", str(args.ng),
        "--communities", *args.communities,
    ]
    if args.no_expert_weighting:
        sanitize_argv.append("--no-expert-weighting")
    if args.workers != 1:
        sanitize_argv += ["--workers", str(args.workers)]
    if args.diff_out is not None:
        sanitize_argv += ["--diff-out", str(args.diff_out)]
    if args.schedule:
        sanitize_argv += [
            "--schedule",
            "--schedule-seeds", str(args.schedule_seeds),
            "--schedule-workers", args.schedule_workers,
        ]
    return sanitize_main(sanitize_argv)


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Delegate to :mod:`repro.resilience.chaos` (fault-injection harness)."""
    from repro.resilience.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        seeds=tuple(args.seed),
        scenario=args.scenario,
        persons=args.persons,
        corpus_seed=args.corpus_seed,
        ng=args.ng,
        corrupt_fraction=args.corrupt_fraction,
        artifacts_dir=args.artifacts_dir,
    )
    return run_chaos(config)


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream arrivals through :class:`IncrementalResolver.add_records`.

    The CLI face of the durable write path: arrivals are absorbed in
    atomic batches, optionally begin/commit-logged to a WAL, and
    ``--recover`` replays a crashed run's committed prefix before
    continuing. Identity is enforced — recovery against a different
    base corpus or pipeline configuration is refused, not guessed at.
    """
    from repro.core.incremental import IncrementalResolver
    from repro.core.pipeline import corpus_stats
    from repro.obs.report import RunReport
    from repro.resilience.wal import WalError, WriteAheadLog

    if args.recover and args.wal_dir is None:
        print("repro ingest: --recover requires --wal-dir", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print(f"repro ingest: --batch-size must be >= 1, "
              f"got {args.batch_size}", file=sys.stderr)
        return 2
    config = _pipeline_config(args)
    tracer = _build_tracer(args)
    policy = _POLICY_BY_FLAG[args.on_bad_row]
    quarantine = Quarantine()
    base = _load_corpus(args.base)
    arrivals = list(
        _load_corpus(args.arrivals, policy=policy, quarantine=quarantine)
    )
    fsync = not args.no_fsync

    try:
        if args.recover:
            resolver, recovery = IncrementalResolver.recover(
                args.wal_dir, base, config, fsync=fsync
            )
            print(f"recovered {recovery.batches_replayed} committed "
                  f"batches ({recovery.records_replayed} records) "
                  f"from {args.wal_dir}")
            if recovery.dropped_batches:
                dropped = ", ".join(
                    str(batch) for batch in recovery.dropped_batches
                )
                print(f"WARNING: crash dropped uncommitted batch(es) "
                      f"{dropped} ({recovery.dropped_records} records); "
                      f"re-ingest them")
            if recovery.torn_tail_bytes:
                print(f"truncated {recovery.torn_tail_bytes} torn tail "
                      f"bytes from the log")
        else:
            wal = (
                WriteAheadLog(args.wal_dir, fsync=fsync)
                if args.wal_dir is not None else None
            )
            resolver = IncrementalResolver(base, config, wal=wal)
    except (WalError, ValueError) as error:
        print(f"repro ingest: {error}", file=sys.stderr)
        return 2

    batches = [
        arrivals[start:start + args.batch_size]
        for start in range(0, len(arrivals), args.batch_size)
    ]
    added = 0
    try:
        for batch in batches:
            result = resolver.add_records(
                batch, policy=policy, quarantine=quarantine,
                source=str(args.arrivals),
            )
            added += len(result.added)
    except ValueError as error:
        # FAIL_FAST duplicate: atomic-at-the-batch means nothing of the
        # failing batch was applied (or logged as committed).
        print(f"repro ingest: {error}", file=sys.stderr)
        return 1
    finally:
        if resolver.wal is not None:
            resolver.wal.close()

    tracer.count("ingest.batches", len(batches))
    tracer.count("ingest.records_added", added)
    if quarantine.n_quarantined:
        tracer.count("ingest.rows_quarantined", quarantine.n_quarantined)
        print(f"quarantined {quarantine.n_quarantined} rows")
    if args.quarantine_out is not None:
        quarantine.to_jsonl(args.quarantine_out)
        print(f"wrote quarantine log to {args.quarantine_out}")

    resolution = resolver.resolution()
    crisp = resolution.resolve(args.certainty)
    print(f"ingested {added} records in {len(batches)} batch(es) onto "
          f"{len(base)} base records; {len(resolution)} ranked pairs, "
          f"{len(crisp)} above certainty {args.certainty}")
    wal_counters = resolver.wal_counters()
    if wal_counters:
        print(f"wal: {wal_counters['segments']} segment(s), "
              f"{wal_counters['batches_committed']} batches committed, "
              f"{wal_counters['replayed']} replayed, "
              f"{wal_counters['torn_tail_dropped']} torn tail bytes "
              f"dropped")

    if args.report is not None:
        resilience = {"degraded": False}
        if wal_counters:
            resilience["wal"] = wal_counters
        if quarantine.n_quarantined:
            resilience["quarantine"] = {
                "rows": quarantine.n_quarantined,
            }
        RunReport.build(
            tracer.aggregate,
            config=config.to_echo(),
            corpus=corpus_stats(base),
            resilience=resilience,
        ).to_json(args.report)
        print(f"wrote run report to {args.report}")
    tracer.close()
    if args.trace is not None:
        print(f"wrote trace events to {args.trace}")

    if args.out is not None:
        resolution.to_csv(args.out, certainty=args.certainty)
        print(f"wrote {len(crisp)} pairs to {args.out}")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Checkpoint-directory maintenance (``repro checkpoint gc``)."""
    from repro.resilience.checkpoints import gc_checkpoints

    try:
        report = gc_checkpoints(
            args.directory, args.keep, dry_run=args.dry_run
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"repro checkpoint gc: {error}", file=sys.stderr)
        return 2
    verb = "would remove" if report.dry_run else "removed"
    for name in report.removed:
        print(f"{verb} {name}")
    for name in report.orphans_removed:
        print(f"{verb} {name} (torn temp file)")
    print(f"kept {len(report.kept)} checkpoint(s); {verb} "
          f"{len(report.removed) + len(report.orphans_removed)} file(s), "
          f"{report.bytes_reclaimed} bytes")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    """The perf-regression ledger (``repro perf record`` / ``diff``)."""
    import json as json_module

    from repro.obs.perf import DEFAULT_THRESHOLD, PerfLedger, run_diff

    if args.perf_command == "record":
        missing = [path for path in args.reports if not path.exists()]
        if missing:
            names = ", ".join(str(path) for path in missing)
            print(f"repro perf record: no such report: {names}",
                  file=sys.stderr)
            return 2
        entries = PerfLedger(args.ledger).record(
            list(args.reports), note=args.note
        )
        for entry in entries:
            print(f"recorded baseline {entry.name} "
                  f"({entry.file}, repro {entry.repro_version})")
        print(f"ledger: {args.ledger / 'ledger.json'}")
        return 0

    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    result, error = run_diff(args.baseline, args.current, threshold)
    if result is None:
        print(f"repro perf diff: {error}", file=sys.stderr)
        return 2
    print(result.format_table())
    if args.json_out is not None:
        args.json_out.write_text(
            json_module.dumps(result.to_dict(), indent=1) + "\n"
        )
        print(f"wrote verdict to {args.json_out}")
    if result.verdict == "regression":
        if args.strict:
            return 1
        print(
            "WARNING: perf regression vs baseline (warn-only; pass "
            "--strict to fail)",
            file=sys.stderr,
        )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "resolve": _cmd_resolve,
    "profile": _cmd_profile,
    "narratives": _cmd_narratives,
    "experiment": _cmd_experiment,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
    "chaos": _cmd_chaos,
    "ingest": _cmd_ingest,
    "checkpoint": _cmd_checkpoint,
    "perf": _cmd_perf,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
