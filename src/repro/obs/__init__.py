"""Observability: tracing spans, counters, and run reports.

The paper's deployment story (Sections 6-7) is a performance story —
MFIBlocks minsup iterations, FP-tree construction, CS/SN pruning, and
ADTree ranking dominate runtime (Fig. 12) — and optimizing any of it
requires knowing where time goes first. This package is that substrate:

* :class:`Tracer` — nested monotonic-clock spans plus typed counters
  and gauges, near-zero-cost when disabled (the default);
* pluggable clocks (:mod:`repro.obs.clock`) and sinks
  (:mod:`repro.obs.sinks`): no-op, JSONL event stream, in-memory
  aggregation;
* :class:`RunReport` — the structured per-stage wall-time / counter
  summary attached to every traced
  :class:`~repro.core.resolution.ResolutionResult` and emitted by
  ``repro resolve --report`` / ``repro profile``.

Instrumented library code stays deterministic: with the default
:data:`NULL_TRACER` nothing is computed, and with tracing enabled only
the timestamp fields of emitted events vary between runs (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from repro.obs.clock import Clock, ManualClock, MonotonicClock
from repro.obs.events import (
    SCHEDULE_ATTRS,
    SCHEMA_VERSION,
    TIMESTAMP_FIELDS,
    strip_timestamps,
    strip_volatile,
)
from repro.obs.report import Aggregator, RunReport, StageStats
from repro.obs.sinks import InMemorySink, JsonlSink, NullSink, Sink
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.obs.worker import (
    ChunkProfile,
    DispatchProfile,
    ParallelProfile,
    WorkerTracer,
    merge_worker_events,
)

__all__ = [
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "SCHEDULE_ATTRS",
    "SCHEMA_VERSION",
    "TIMESTAMP_FIELDS",
    "strip_timestamps",
    "strip_volatile",
    "Aggregator",
    "RunReport",
    "StageStats",
    "InMemorySink",
    "JsonlSink",
    "NullSink",
    "Sink",
    "NULL_TRACER",
    "Tracer",
    "ChunkProfile",
    "DispatchProfile",
    "ParallelProfile",
    "WorkerTracer",
    "merge_worker_events",
]
