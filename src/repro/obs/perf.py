"""The perf-regression ledger: versioned baselines + threshold diffs.

The parallel layer's negative scaling went unnoticed until a human
read ``parallel_speedup.txt``; this module makes that comparison a
machine check. A :class:`PerfLedger` is a committed directory
(``benchmarks/baselines/``) of run-report JSONs — the exact schema
``repro resolve --report`` / ``bench_common.emit_report`` write — plus
a ``ledger.json`` index. ``repro perf record`` adds or refreshes
baselines; ``repro perf diff`` compares a fresh results directory
against them and renders a human table plus a JSON verdict, which CI's
``perf-regression`` job uploads as an artifact.

Design constraints:

* **No timestamps in the ledger.** Entries carry the build version and
  an operator note, never a recording time — committing a baseline
  must not churn bytes on re-record of identical results, and the
  repo-wide wall-clock ban (reprolint RL005) extends to tooling.
* **Noise-floored thresholds.** Timing metrics compare by ratio
  against ``--threshold`` (default 0.25 = 25% slower is a regression),
  but only above a floor of :data:`MIN_SECONDS` — sub-10ms stages are
  scheduler noise on any shared runner.
* **Workload drift is its own failure.** Counters are workload-
  deterministic (records seen, pairs ranked); a counter mismatch means
  baseline and current measured *different work*, which is reported as
  drift rather than silently compared. Measurement counters
  (``parallel.*`` byte/chunk counts) are exempt — they legitimately
  vary with worker count and pickle memoization.
* **Warn-only by default.** Timing on shared CI is noisy; the diff
  exits 0 unless ``--strict`` is passed, mirroring the benchmark
  suite's ``--assert-speedup`` opt-in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.report import RunReport
from repro.version import repro_version

__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_INDEX",
    "MIN_SECONDS",
    "DEFAULT_THRESHOLD",
    "LedgerEntry",
    "PerfLedger",
    "MetricDiff",
    "PerfDiffResult",
    "diff_reports",
    "run_diff",
]

#: Version of the ledger index schema; bump on breaking change.
LEDGER_SCHEMA = 1

#: Index file name inside a ledger directory.
LEDGER_INDEX = "ledger.json"

#: Timing noise floor: metrics where both sides are below this many
#: seconds are never flagged — they measure the scheduler, not the code.
MIN_SECONDS = 0.01

#: Default regression threshold: current/baseline ratio above 1.25
#: (or below 0.75 for higher-is-better metrics) flags a regression.
DEFAULT_THRESHOLD = 0.25

#: Counter prefixes that measure the *measurement* (pickle bytes, chunk
#: counts), not the workload; they vary with worker count and
#: PYTHONHASHSEED and are excluded from drift detection.
_MEASUREMENT_COUNTER_PREFIXES = ("parallel.",)

#: Stage rows deeper than this are skipped: leaf spans multiply with
#: chunk counts (merged worker spans) and add noise, not signal.
_MAX_STAGE_DEPTH = 2


@dataclass
class LedgerEntry:
    """One baseline in the ledger index."""

    name: str
    file: str
    repro_version: str
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "file": self.file,
            "repro_version": self.repro_version,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LedgerEntry":
        return cls(
            name=str(payload["name"]),
            file=str(payload["file"]),
            repro_version=str(payload.get("repro_version", "")),
            note=str(payload.get("note", "")),
        )


class PerfLedger:
    """A committed directory of baseline run reports plus an index."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    @property
    def index_path(self) -> Path:
        return self.directory / LEDGER_INDEX

    def entries(self) -> List[LedgerEntry]:
        """The index, sorted by name; [] for a fresh/absent ledger."""
        if not self.index_path.exists():
            return []
        payload = json.loads(self.index_path.read_text())
        entries = [
            LedgerEntry.from_dict(entry)
            for entry in payload.get("entries", [])
        ]
        return sorted(entries, key=lambda entry: entry.name)

    def baseline(self, name: str) -> Optional[RunReport]:
        """The recorded baseline report for ``name`` (None if absent)."""
        for entry in self.entries():
            if entry.name == name:
                path = self.directory / entry.file
                if path.exists():
                    return RunReport.from_json(path)
        return None

    def record(
        self, reports: List[Path], note: str = ""
    ) -> List[LedgerEntry]:
        """Add or refresh baselines from report JSON files.

        Each report is parsed (validating the schema), renamed to
        ``<name>.report.json`` where ``name`` is the source stem minus
        any ``.report`` suffix, and re-serialized into the ledger
        directory; same-name entries are replaced. Returns the entries
        written.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = {entry.name: entry for entry in self.entries()}
        written: List[LedgerEntry] = []
        for source in reports:
            report = RunReport.from_json(source)
            name = source.stem
            if name.endswith(".report"):
                name = name[: -len(".report")]
            filename = f"{name}.report.json"
            report.to_json(self.directory / filename)
            entry = LedgerEntry(
                name=name,
                file=filename,
                repro_version=report.version,
                note=note,
            )
            existing[name] = entry
            written.append(entry)
        index = {
            "schema": LEDGER_SCHEMA,
            "recorded_with": repro_version(),
            "entries": [
                existing[name].to_dict() for name in sorted(existing)
            ],
        }
        self.index_path.write_text(
            json.dumps(index, indent=1, sort_keys=False) + "\n"
        )
        return written


@dataclass
class MetricDiff:
    """One compared metric: baseline vs current, with a verdict.

    ``status`` is one of ``ok`` / ``regression`` / ``improved`` /
    ``drift`` (workload counters differ — the comparison itself is
    suspect). ``direction`` records which way is better so the JSON
    verdict is self-describing.
    """

    report: str
    metric: str
    baseline: float
    current: float
    status: str
    direction: str  # "lower-better" | "higher-better" | "exact"

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline == 0:
            return None
        return self.current / self.baseline

    def to_dict(self) -> Dict[str, Any]:
        return {
            "report": self.report,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "status": self.status,
            "direction": self.direction,
        }


@dataclass
class PerfDiffResult:
    """The full outcome of one ledger diff."""

    threshold: float
    rows: List[MetricDiff] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDiff]:
        return [
            row for row in self.rows if row.status in ("regression", "drift")
        ]

    @property
    def verdict(self) -> str:
        if self.regressions or self.missing:
            return "regression"
        return "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": LEDGER_SCHEMA,
            "threshold": self.threshold,
            "verdict": self.verdict,
            "missing": list(self.missing),
            "regressions": [row.to_dict() for row in self.regressions],
            "rows": [row.to_dict() for row in self.rows],
        }

    def format_table(self) -> str:
        """The human-facing diff: flagged rows first, then the verdict."""
        lines: List[str] = [
            f"perf diff vs baseline (threshold {self.threshold:.0%}, "
            f"noise floor {MIN_SECONDS * 1000:.0f} ms)"
        ]
        flagged = self.regressions
        improved = [row for row in self.rows if row.status == "improved"]
        ordered = flagged + improved
        if not ordered and not self.missing:
            lines.append(
                f"all {len(self.rows)} compared metrics within threshold"
            )
        rows: List[List[str]] = []
        for row in ordered:
            ratio = row.ratio
            rows.append(
                [
                    row.report,
                    row.metric,
                    f"{row.baseline:.4f}",
                    f"{row.current:.4f}",
                    f"{ratio:.2f}x" if ratio is not None else "-",
                    row.status.upper()
                    if row.status in ("regression", "drift")
                    else row.status,
                ]
            )
        if rows:
            headers = ["report", "metric", "baseline", "current",
                       "ratio", "status"]
            widths = [
                max(len(headers[col]), *(len(r[col]) for r in rows))
                for col in range(len(headers))
            ]

            def render(cells: List[str]) -> str:
                return "  ".join(
                    cell.ljust(width)
                    for cell, width in zip(cells, widths)
                ).rstrip()

            lines.append(render(headers))
            lines.append(render(["-" * width for width in widths]))
            lines.extend(render(r) for r in rows)
        for name in self.missing:
            lines.append(
                f"MISSING: baseline {name!r} has no current report"
            )
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)


def diff_reports(
    name: str,
    baseline: RunReport,
    current: RunReport,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[MetricDiff]:
    """Compare one baseline/current report pair metric by metric."""
    rows: List[MetricDiff] = []

    def timing(metric: str, base: float, cur: float,
               higher_better: bool = False) -> None:
        direction = "higher-better" if higher_better else "lower-better"
        if not higher_better and base < MIN_SECONDS and cur < MIN_SECONDS:
            status = "ok"  # both under the noise floor
        elif base <= 0:
            status = "ok"  # no ratio to form; total/counters catch it
        else:
            ratio = cur / base
            if higher_better:
                ratio = base / cur if cur > 0 else float("inf")
            if ratio > 1.0 + threshold:
                status = "regression"
            elif ratio < 1.0 - threshold:
                status = "improved"
            else:
                status = "ok"
        rows.append(
            MetricDiff(
                report=name, metric=metric, baseline=base, current=cur,
                status=status, direction=direction,
            )
        )

    timing("total_seconds", baseline.total_seconds, current.total_seconds)

    base_stages = {
        stats.path: stats
        for stats in baseline.stages
        if stats.depth <= _MAX_STAGE_DEPTH
    }
    cur_stages = {stats.path: stats for stats in current.stages}
    for path in sorted(base_stages):
        cur_stats = cur_stages.get(path)
        if cur_stats is None:
            continue  # stage set drift surfaces through counters/total
        timing(
            f"stage:{path}",
            base_stages[path].total_seconds,
            cur_stats.total_seconds,
        )

    for metric, higher_better in (
        ("wall_seconds", False),
        ("speedup_vs_serial", True),
    ):
        base_value = baseline.parallel.get(metric)
        cur_value = current.parallel.get(metric)
        if isinstance(base_value, (int, float)) and isinstance(
            cur_value, (int, float)
        ):
            timing(
                f"parallel.{metric}",
                float(base_value),
                float(cur_value),
                higher_better=higher_better,
            )

    for counter in sorted(baseline.counters):
        if counter.startswith(_MEASUREMENT_COUNTER_PREFIXES):
            continue
        base_count = baseline.counters[counter]
        cur_count = current.counters.get(counter)
        if cur_count is None or cur_count != base_count:
            rows.append(
                MetricDiff(
                    report=name,
                    metric=f"counter:{counter}",
                    baseline=float(base_count),
                    current=float(cur_count if cur_count is not None else -1),
                    status="drift",
                    direction="exact",
                )
            )
    return rows


def run_diff(
    baseline_dir: Union[str, Path],
    current_dir: Union[str, Path],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[Optional[PerfDiffResult], str]:
    """Diff every ledger baseline against ``current_dir``'s reports.

    Returns ``(result, error)``: on usage errors (no ledger, empty
    index) the result is None and ``error`` explains; otherwise
    ``error`` is "".
    """
    ledger = PerfLedger(baseline_dir)
    if not ledger.index_path.exists():
        return None, (
            f"no ledger index at {ledger.index_path} - record a baseline "
            "first (repro perf record benchmarks/results/*.report.json "
            f"--ledger {ledger.directory})"
        )
    entries = ledger.entries()
    if not entries:
        return None, f"ledger index {ledger.index_path} has no entries"
    current_path = Path(current_dir)
    result = PerfDiffResult(threshold=threshold)
    for entry in entries:
        baseline = ledger.baseline(entry.name)
        if baseline is None:
            result.missing.append(entry.name)
            continue
        candidate = current_path / f"{entry.name}.report.json"
        if not candidate.exists():
            result.missing.append(entry.name)
            continue
        current = RunReport.from_json(candidate)
        result.rows.extend(
            diff_reports(entry.name, baseline, current, threshold)
        )
    return result, ""
