"""Event sinks: where trace events go.

A :class:`Sink` receives every event a tracer emits, in order. Three
implementations cover the design space:

* :class:`NullSink` — discards everything (the disabled-tracer analog;
  a tracer with no sinks short-circuits even earlier);
* :class:`JsonlSink` — streams events as JSON Lines for offline
  analysis (``repro resolve --trace trace.jsonl``);
* :class:`InMemorySink` — buffers raw events for tests and ad-hoc
  inspection.

The in-memory *aggregator* (per-stage totals feeding
:class:`~repro.obs.report.RunReport`) is also a sink; it lives in
:mod:`repro.obs.report` next to the report it produces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

__all__ = ["Sink", "NullSink", "JsonlSink", "InMemorySink"]


class Sink:
    """Interface: consumes trace events (plain dicts), in emit order."""

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to durable storage; safe to call anytime.

        The tracer calls this when a span exits abnormally so a crash
        (e.g. the chaos ``worker-crash`` scenario breaking the pool out
        from under a dispatch) cannot strand the final events in a
        userspace buffer.
        """

    def close(self) -> None:
        """Flush/release resources; must be idempotent."""


class NullSink(Sink):
    """Discards every event."""

    def emit(self, event: Dict[str, Any]) -> None:
        return None


class InMemorySink(Sink):
    """Buffers events in order; ``events`` is the raw list."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)


class JsonlSink(Sink):
    """Writes one JSON object per line to a file or open text handle.

    Keys are serialized sorted so identical runs produce byte-identical
    lines modulo the timestamp fields. When constructed from a path the
    sink owns (and closes) the handle; a caller-supplied handle is
    flushed but left open on :meth:`close`. Events are written one full
    line at a time and :meth:`flush` pushes them through the userspace
    buffer, so an abnormal exit flushed by the tracer never truncates
    the stream mid-line. ``close`` is idempotent — teardown paths that
    race an exception handler can both call it safely.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        self._owns_handle = isinstance(target, (str, Path))
        if isinstance(target, (str, Path)):
            self._handle: Optional[IO[str]] = open(target, "w", encoding="utf-8")
        else:
            self._handle = target

    def emit(self, event: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError("sink is closed")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()
        self._handle = None
