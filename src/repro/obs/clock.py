"""Pluggable clocks for the tracer.

This is the **only** module in ``src/`` permitted to read the wall
clock. The exemption is carried by the ``@impure`` contract on
:meth:`MonotonicClock.now` — an explicit, per-function declaration that
reprolint's RL005 honors directly, instead of a path-based waiver in
``pyproject.toml``.

Rationale: reprolint's RL005 bans clock reads in library code because
timestamps make output vary run-over-run by construction. Observability
is the one subsystem whose *job* is to measure wall time — but the
non-determinism must stay quarantined. Concentrating every clock read
behind the :class:`Clock` interface here keeps the contract auditable:

* instrumented pipeline code never touches the clock — it asks the
  tracer, which asks its injected clock;
* timing values flow only into fields declared in
  :data:`repro.obs.events.TIMESTAMP_FIELDS`, never into resolution
  output (the determinism tests pin this byte-for-byte);
* tests swap in :class:`ManualClock` and get fully deterministic
  traces, durations included.

:class:`MonotonicClock` uses ``time.perf_counter`` — monotonic and the
highest-resolution timer available — so spans are immune to system
clock adjustments; span times are durations, not datetimes.
"""

from __future__ import annotations

import time

from repro.contracts import impure

__all__ = ["Clock", "MonotonicClock", "ManualClock"]


class Clock:
    """Interface: a monotonically non-decreasing seconds counter.

    The zero point is arbitrary; only differences are meaningful.
    """

    def now(self) -> float:
        """Current reading in (fractional) seconds."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real clock: ``time.perf_counter`` (monotonic, high-resolution)."""

    @impure("wall-clock read — the tracer's quarantined timing source")
    def now(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """A deterministic clock for tests: advances only when told to.

    ``tick`` optionally auto-advances the clock by a fixed amount on
    every read, so each span acquires a distinct, reproducible duration
    without explicit :meth:`advance` calls.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        if tick < 0:
            raise ValueError(f"tick must be non-negative, got {tick}")
        self._now = start
        self.tick = tick

    def now(self) -> float:
        value = self._now
        self._now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}; time is monotonic")
        self._now += seconds
