"""Per-stage aggregation and the structured :class:`RunReport`.

The :class:`Aggregator` is the in-memory sink behind every enabled
tracer: it folds the event stream into per-span-path wall-time totals,
summed counters, and last-value gauges. :class:`RunReport` is the
serializable snapshot of that state plus provenance — build version,
schema version, pipeline-config echo, corpus stats — attached to
:class:`~repro.core.resolution.ResolutionResult` and written by
``repro resolve --report`` / ``repro profile`` / the benchmark harness.

Report JSON schema (version :data:`~repro.obs.events.SCHEMA_VERSION`)::

    {
      "schema": 1,
      "version": "1.0.0",            # build that produced the report
      "total_seconds": 1.23,         # sum of top-level span times
      "stages": [                    # first-start order (tree order)
        {"path": "pipeline.run", "name": "pipeline.run",
         "depth": 1, "calls": 1, "total_seconds": 1.23},
        ...
      ],
      "counters": {"pipeline.records": 180, ...},   # sorted keys
      "gauges": {"fpgrowth.tree_nodes": 412.0, ...},
      "config": {...},               # PipelineConfig echo (or {})
      "corpus": {...},               # corpus stats (or {})
      "resilience": {...},           # degraded flag, checkpoint summary
      "parallel": {...},             # executor echo: workers, chunk counts
      "parallel_profile": {...}      # per-chunk overhead ledger (or {})
    }

The ``resilience`` block (schema in ``docs/RESILIENCE.md``), the
``parallel`` block (executor name, worker count, chunk/retry counts —
schema in ``docs/PARALLELISM.md``) and the ``parallel_profile`` block
(per-worker/per-chunk pickle bytes, queue-wait vs compute breakdown —
schema in ``docs/OBSERVABILITY.md``, rendered by ``repro profile
--timeline``) were added additively within schema version 1: old
readers ignore them, old reports deserialize with empty blocks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.events import COUNTER, GAUGE, SCHEMA_VERSION, SPAN_END, SPAN_START
from repro.obs.sinks import Sink
from repro.version import repro_version

__all__ = ["StageStats", "Aggregator", "RunReport"]


@dataclass
class StageStats:
    """Accumulated wall time of one span path (one pipeline stage)."""

    name: str
    path: str
    depth: int
    calls: int = 0
    total_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StageStats":
        return cls(
            name=str(payload["name"]),
            path=str(payload["path"]),
            depth=int(payload["depth"]),
            calls=int(payload["calls"]),
            total_seconds=float(payload["total_seconds"]),
        )


class Aggregator(Sink):
    """Folds the event stream into stage/counter/gauge aggregates.

    Stages are keyed by full span *path* so the same span name nested
    under different parents aggregates separately, and are kept in
    first-start order — parents before children, siblings in execution
    order — which is exactly tree order for rendering.
    """

    def __init__(self) -> None:
        self.stages: Dict[str, StageStats] = {}
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}

    def emit(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == SPAN_START:
            path = event["path"]
            if path not in self.stages:
                self.stages[path] = StageStats(
                    name=event["name"], path=path, depth=event["depth"]
                )
        elif kind == SPAN_END:
            path = event["path"]
            stats = self.stages.get(path)
            if stats is None:  # defensive: end without start
                stats = StageStats(
                    name=event["name"], path=path, depth=event["depth"]
                )
                self.stages[path] = stats
            stats.calls += 1
            stats.total_seconds += event["duration"]
        elif kind == COUNTER:
            name = event["name"]
            self.counters[name] = self.counters.get(name, 0) + event["value"]
        elif kind == GAUGE:
            self.gauges[event["name"]] = event["value"]

    def total_seconds(self) -> float:
        """Wall time covered: the sum of top-level (depth-1) spans."""
        return sum(
            stats.total_seconds
            for stats in self.stages.values()
            if stats.depth == 1
        )


@dataclass
class RunReport:
    """A structured, serializable account of one instrumented run."""

    version: str
    schema_version: int
    total_seconds: float
    stages: List[StageStats] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    corpus: Dict[str, Any] = field(default_factory=dict)
    resilience: Dict[str, Any] = field(default_factory=dict)
    parallel: Dict[str, Any] = field(default_factory=dict)
    parallel_profile: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        aggregate: Aggregator,
        config: Optional[Mapping[str, Any]] = None,
        corpus: Optional[Mapping[str, Any]] = None,
        resilience: Optional[Mapping[str, Any]] = None,
        parallel: Optional[Mapping[str, Any]] = None,
        parallel_profile: Optional[Mapping[str, Any]] = None,
    ) -> "RunReport":
        """Snapshot an aggregator into a report (stages are copied)."""
        return cls(
            version=repro_version(),
            schema_version=SCHEMA_VERSION,
            total_seconds=aggregate.total_seconds(),
            stages=[
                StageStats(**stats.to_dict())
                for stats in aggregate.stages.values()
            ],
            counters=dict(aggregate.counters),
            gauges=dict(aggregate.gauges),
            config=dict(config or {}),
            corpus=dict(corpus or {}),
            resilience=dict(resilience or {}),
            parallel=dict(parallel or {}),
            parallel_profile=dict(parallel_profile or {}),
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema_version,
            "version": self.version,
            "total_seconds": self.total_seconds,
            "stages": [stats.to_dict() for stats in self.stages],
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "config": self.config,
            "corpus": self.corpus,
            "resilience": self.resilience,
            "parallel": self.parallel,
            "parallel_profile": self.parallel_profile,
        }

    def to_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=False) + "\n"
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunReport":
        return cls(
            version=str(payload["version"]),
            schema_version=int(payload["schema"]),
            total_seconds=float(payload["total_seconds"]),
            stages=[
                StageStats.from_dict(entry) for entry in payload["stages"]
            ],
            counters={
                str(k): int(v) for k, v in payload.get("counters", {}).items()
            },
            gauges={
                str(k): float(v) for k, v in payload.get("gauges", {}).items()
            },
            config=dict(payload.get("config", {})),
            corpus=dict(payload.get("corpus", {})),
            resilience=dict(payload.get("resilience", {})),
            parallel=dict(payload.get("parallel", {})),
            parallel_profile=dict(payload.get("parallel_profile", {})),
        )

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "RunReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- rendering -----------------------------------------------------------

    def format_table(self) -> str:
        """Per-stage time/counter table (the ``repro profile`` output).

        Stages print in tree order, indented by nesting depth, with each
        stage's share of the total; counters and gauges follow. The
        top-level stage times sum to ``total_seconds`` by construction,
        and nested rows sum to (almost all of) their parent because the
        instrumentation covers the hot path end to end.
        """
        total = self.total_seconds
        lines: List[str] = [
            f"run report (schema v{self.schema_version}, "
            f"repro {self.version})"
        ]
        label = self.config.get("label")
        if label:
            lines.append(f"config: {label}")
        if self.corpus:
            corpus_bits = ", ".join(
                f"{key}={self.corpus[key]}" for key in sorted(self.corpus)
            )
            lines.append(f"corpus: {corpus_bits}")
        workers = self.parallel.get("workers")
        if isinstance(workers, int) and workers > 1:
            lines.append(
                f"parallel: {self.parallel.get('executor')} executor, "
                f"{workers} workers, "
                f"{self.parallel.get('chunks', 0)} chunks "
                f"({self.parallel.get('worker_retries', 0)} retried)"
            )
        profile_totals = self.parallel_profile.get("totals") or {}
        if profile_totals:
            accounted = float(profile_totals.get("accounted_fraction", 0.0))
            lines.append(
                "parallel profile: "
                f"{profile_totals.get('dispatches', 0)} dispatches, "
                f"{accounted:.0%} of dispatch wall attributed "
                "(repro profile --timeline)"
            )
        if self.resilience.get("degraded"):
            lines.append(
                "DEGRADED: a stage budget was exhausted; "
                "results are best-so-far"
            )
        resumed = (self.resilience.get("checkpoints") or {}).get("resumed_from")
        if resumed:
            lines.append(f"resumed from checkpoint: {resumed}")
        lines.append("")

        rows: List[List[str]] = [
            [
                "  " * (stats.depth - 1) + stats.name,
                str(stats.calls),
                f"{stats.total_seconds:.4f}",
                f"{(stats.total_seconds / total * 100):5.1f}%" if total > 0 else "",
            ]
            for stats in self.stages
        ]
        rows.append(["total", "", f"{total:.4f}", "100.0%" if total > 0 else ""])
        headers = ["stage", "calls", "seconds", "share"]
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in rows))
            for col in range(4)
        ]

        def render(cells: List[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        lines.append(render(headers))
        lines.append(render(["-" * width for width in widths]))
        lines.extend(render(row) for row in rows)

        if self.counters:
            lines.append("")
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name.ljust(width)}  {self.counters[name]}")
        if self.gauges:
            lines.append("")
            lines.append("gauges:")
            width = max(len(name) for name in self.gauges)
            for name in sorted(self.gauges):
                lines.append(f"  {name.ljust(width)}  {self.gauges[name]:g}")
        return "\n".join(lines)

    def format_timeline(self) -> str:
        """Per-worker lane table + overhead-vs-compute summary.

        Renders the additive ``parallel_profile`` block (``repro
        profile --timeline``). Reports without the block — pre-profile
        reports, serial runs, untraced runs — render a one-line notice
        instead of failing, which is the forward-compatibility contract
        ``tests/test_obs.py`` pins. Every field access tolerates
        absence: a report written by a newer build with extra keys, or
        an older one missing some, still renders.
        """
        profile = self.parallel_profile
        if not profile or not profile.get("chunks"):
            return (
                "no parallel profile recorded - run traced with "
                "--workers > 1 (the serial executor has no dispatch "
                "overhead to attribute)"
            )
        lines: List[str] = [
            f"parallel timeline ({profile.get('executor', '?')} executor, "
            f"{profile.get('workers', '?')} workers, "
            f"{len(profile.get('dispatches') or [])} dispatches)"
        ]
        if profile.get("profile_memory"):
            lines.append(
                "memory profiling: tracemalloc peaks recorded per chunk"
            )
        lines.append("")

        lane_rows: List[List[str]] = []
        for index, lane in enumerate(profile.get("lanes") or []):
            name = f"w{index}"
            if lane.get("role") == "parent":
                name += " (parent)"
            lane_rows.append(
                [
                    name,
                    str(lane.get("worker", "")),
                    str(lane.get("chunks", 0)),
                    f"{float(lane.get('compute_seconds', 0.0)):.4f}",
                    f"{float(lane.get('queue_seconds', 0.0)):.4f}",
                    f"{float(lane.get('pickle_seconds', 0.0)):.4f}",
                    _kib(lane.get("payload_bytes_in", 0)),
                    _kib(lane.get("payload_bytes_out", 0)),
                ]
            )
        lines.extend(
            _render_table(
                ["lane", "pid", "chunks", "compute s", "queue s",
                 "pickle s", "in KiB", "out KiB"],
                lane_rows,
            )
        )
        lines.append(
            "(lanes overlap in wall time when chunks run concurrently; "
            "parent lanes are inline or crash-retried chunks)"
        )
        lines.append("")

        dispatch_rows: List[List[str]] = []
        for dispatch in profile.get("dispatches") or []:
            dispatch_rows.append(
                [
                    f"{dispatch.get('label', '?')} "
                    f"(#{dispatch.get('map_call', 0)})",
                    str(dispatch.get("chunks", 0)),
                    f"{float(dispatch.get('wall_seconds', 0.0)):.4f}",
                    f"{float(dispatch.get('compute_seconds', 0.0)):.4f}",
                    f"{float(dispatch.get('queue_seconds', 0.0)):.4f}",
                    f"{float(dispatch.get('pickle_seconds', 0.0)):.4f}",
                    _kib(dispatch.get("payload_bytes_in", 0)),
                    f"{float(dispatch.get('accounted_fraction', 0.0)):.0%}",
                ]
            )
        lines.extend(
            _render_table(
                ["dispatch", "chunks", "wall s", "compute s", "queue s",
                 "pickle s", "in KiB", "accounted"],
                dispatch_rows,
            )
        )
        lines.append("")

        totals = profile.get("totals") or {}
        wall = float(totals.get("wall_seconds", 0.0))
        compute = float(totals.get("compute_seconds", 0.0))
        queue = float(totals.get("queue_seconds", 0.0))
        pickle_s = float(totals.get("pickle_seconds", 0.0))

        def share(seconds: float) -> str:
            return f"{seconds / wall:6.1%} of wall" if wall > 0 else ""

        lines.append("overhead vs compute:")
        lines.append(f"  dispatch wall              {wall:.4f} s")
        lines.append(
            f"  worker compute             {compute:.4f} s  {share(compute)}"
            .rstrip()
        )
        lines.append(
            f"  pickle (payloads+results)  {pickle_s:.4f} s  "
            f"{share(pickle_s)}".rstrip()
        )
        lines.append(
            f"  queue wait                 {queue:.4f} s  {share(queue)}"
            .rstrip()
        )
        peak = totals.get("tracemalloc_peak_bytes")
        if peak is not None:
            lines.append(
                f"  tracemalloc peak           {_kib(peak)} KiB (max chunk)"
            )
        accounted = float(totals.get("accounted_fraction", 0.0))
        lines.append(
            f"accounting: {accounted:.1%} of dispatch wall attributed "
            "parent-side (target >= 90%)"
        )
        return "\n".join(lines)


def _kib(value: Any) -> str:
    """Bytes rendered as KiB with one decimal (table-friendly)."""
    try:
        return f"{float(value) / 1024.0:.1f}"
    except (TypeError, ValueError):
        return "?"


def _render_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    """Left-justified fixed-width text table (header, rule, rows)."""
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        if rows
        else len(headers[col])
        for col in range(len(headers))
    ]

    def render(cells: List[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = [render(headers), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rows)
    return lines

