"""The versioned trace-event schema (see ``docs/OBSERVABILITY.md``).

Events are plain dicts so every sink can serialize them without an
intermediate object layer. Schema version 1 defines five event kinds:

``trace_start``
    Emitted once per tracer, before any span: carries the schema
    version and the build version so traces are attributable.
``span_start`` / ``span_end``
    Entry/exit of a named, nested span. ``path`` is the ``/``-joined
    chain of active span names, ``depth`` its length; ``attrs`` carries
    caller-supplied labels (e.g. the current ``minsup``). ``span_end``
    adds ``duration`` (seconds).
``counter``
    A monotone accumulation: occurrences of a named thing (records,
    MFIs mined, pairs dropped). Aggregation sums values per name.
``gauge``
    A point-in-time measurement (FP-tree node count, vocabulary size).
    Aggregation keeps the last value per name.

Determinism contract: for a deterministic workload, two runs emit the
same event sequence except for the fields named in
:data:`TIMESTAMP_FIELDS` — everything else (ordering included) is
reproducible, which :func:`strip_timestamps` lets tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "TRACE_START",
    "SPAN_START",
    "SPAN_END",
    "COUNTER",
    "GAUGE",
    "TIMESTAMP_FIELDS",
    "SCHEDULE_ATTRS",
    "strip_timestamps",
    "strip_volatile",
]

#: Version of the event (and report) schema; bump on breaking change.
SCHEMA_VERSION = 1

TRACE_START = "trace_start"
SPAN_START = "span_start"
SPAN_END = "span_end"
COUNTER = "counter"
GAUGE = "gauge"

#: The only event fields allowed to differ between identical runs.
TIMESTAMP_FIELDS = ("t", "duration")

#: Span attributes that depend on the OS schedule, not the workload:
#: merged worker events carry the pid of whichever pool worker happened
#: to pick the chunk up. Everything else about a merged worker event —
#: path, depth, chunk index, ordering — is workload-determined.
SCHEDULE_ATTRS = ("worker",)


def strip_timestamps(event: Mapping[str, Any]) -> Dict[str, Any]:
    """Copy of ``event`` without its wall-time fields.

    Two traces of the same deterministic run must be equal after this
    projection — the property ``tests/test_end_to_end_determinism.py``
    pins.
    """
    return {
        key: value
        for key, value in event.items()
        if key not in TIMESTAMP_FIELDS
    }


def strip_volatile(event: Mapping[str, Any]) -> Dict[str, Any]:
    """:func:`strip_timestamps` plus the schedule-dependent attributes.

    The projection under which two traces of the same deterministic
    *parallel* run must be equal: worker pids (:data:`SCHEDULE_ATTRS`)
    vary with the pool schedule even though the merged event sequence —
    keyed by chunk index, not arrival order — does not.
    """
    stripped = strip_timestamps(event)
    attrs = stripped.get("attrs")
    if isinstance(attrs, Mapping):
        remaining = {
            key: value
            for key, value in attrs.items()
            if key not in SCHEDULE_ATTRS
        }
        if remaining:
            stripped["attrs"] = remaining
        else:
            stripped.pop("attrs", None)
    return stripped
