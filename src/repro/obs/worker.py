"""Worker-side tracing and parallel-overhead attribution.

``MultiprocessExecutor`` workers share nothing with the parent but
their pickled payload — in particular, not the tracer. PR 2 therefore
stopped tracing at the dispatch boundary: one parent-side span wrapped
the whole pool dispatch, and per-chunk time was invisible, which made
the measured negative scaling (``benchmarks/results/
parallel_speedup.txt``) undiagnosable. This module crosses the
boundary:

* :class:`WorkerTracer` — a buffering tracer for worker processes. It
  reuses the parent-side :class:`~repro.obs.tracer.Span` machinery
  (same event schema, same nesting rules) but collects events in a
  plain list, so a chunk's trace travels back to the parent as
  picklable data alongside the chunk result.
* :func:`merge_worker_events` — folds shipped worker buffers into the
  parent trace **keyed by chunk index, not arrival order**. Two runs of
  the same workload produce the same merged event sequence no matter
  how the OS interleaved the workers, modulo timestamps and worker
  pids (:data:`~repro.obs.events.TIMESTAMP_FIELDS` /
  :data:`~repro.obs.events.SCHEDULE_ATTRS`).
* :class:`ChunkProfile` / :class:`DispatchProfile` /
  :class:`ParallelProfile` — the overhead ledger: per chunk, payload
  pickle bytes in/out, serialize/deserialize seconds, queue wait vs
  compute wall time, optional ``tracemalloc`` peaks; aggregated into
  the additive ``parallel_profile`` block of
  :class:`~repro.obs.report.RunReport` and rendered by ``repro profile
  --timeline``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, cast

from repro.contracts import commutative_merge, deterministic
from repro.obs.clock import Clock, MonotonicClock
from repro.obs.events import COUNTER, GAUGE, SPAN_END
from repro.obs.sinks import Sink
from repro.obs.tracer import Span, Tracer

__all__ = [
    "WORKER_CHUNK_SPAN",
    "WORKER_DESERIALIZE_SPAN",
    "WORKER_COMPUTE_SPAN",
    "WORKER_SERIALIZE_SPAN",
    "WorkerTracer",
    "merge_worker_events",
    "ChunkProfile",
    "DispatchProfile",
    "ParallelProfile",
]

#: Span names a traced chunk emits, outermost first. ``worker.chunk``
#: wraps the chunk end to end; the three children partition it into the
#: payload unpickle, the actual work function, and the result pickle.
WORKER_CHUNK_SPAN = "worker.chunk"
WORKER_DESERIALIZE_SPAN = "worker.deserialize"
WORKER_COMPUTE_SPAN = "worker.compute"
WORKER_SERIALIZE_SPAN = "worker.serialize"


class WorkerTracer:
    """An in-worker tracer that buffers events instead of sinking them.

    Duck-types the parts of :class:`~repro.obs.tracer.Tracer` that
    :class:`~repro.obs.tracer.Span` uses (``clock``, ``_stack``,
    ``_emit``, ``sinks``), so worker spans are emitted by the *same*
    code path as parent spans and the event schema cannot drift between
    the two sides. No ``trace_start`` event is emitted — a worker
    buffer is a fragment of the parent trace, not a trace of its own.
    """

    enabled = True

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.events: List[Dict[str, Any]] = []
        self.sinks: List[Sink] = []  # Span flushes these on error; none here
        self._stack: List[str] = []
        self._seq = 0

    def _emit(self, event: Dict[str, Any]) -> None:
        event["seq"] = self._seq
        self._seq += 1
        self.events.append(event)

    def span(self, name: str, **attrs: Any) -> Span:
        """A buffered span; same semantics as :meth:`Tracer.span`."""
        return Span(cast(Tracer, self), name, attrs)

    def count(self, name: str, value: int = 1) -> None:
        self._emit(
            {
                "event": COUNTER,
                "name": name,
                "path": "/".join(self._stack),
                "value": value,
            }
        )

    def gauge(self, name: str, value: float) -> None:
        self._emit(
            {
                "event": GAUGE,
                "name": name,
                "path": "/".join(self._stack),
                "value": value,
            }
        )

    def span_seconds(self, name: str) -> float:
        """Total buffered wall time of closed spans named ``name``."""
        return sum(
            float(event.get("duration", 0.0))
            for event in self.events
            if event.get("event") == SPAN_END and event.get("name") == name
        )

    def export(
        self,
        chunk_index: int,
        result_bytes: int = 0,
        tracemalloc_peak_bytes: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The picklable worker-trace payload shipped back to the parent.

        Schema (``docs/OBSERVABILITY.md``): ``chunk`` keys the
        deterministic merge; ``pid`` attributes the lane; the
        ``*_seconds`` fields are the per-phase durations the overhead
        ledger consumes without re-scanning events; ``events`` is the
        raw buffered fragment for :func:`merge_worker_events`.
        """
        return {
            "chunk": chunk_index,
            "pid": os.getpid(),
            "deserialize_seconds": self.span_seconds(WORKER_DESERIALIZE_SPAN),
            "compute_seconds": self.span_seconds(WORKER_COMPUTE_SPAN),
            "serialize_seconds": self.span_seconds(WORKER_SERIALIZE_SPAN),
            "worker_seconds": self.span_seconds(WORKER_CHUNK_SPAN),
            "result_bytes": result_bytes,
            "tracemalloc_peak_bytes": tracemalloc_peak_bytes,
            "events": list(self.events),
        }


@commutative_merge
def merge_worker_events(
    tracer: Tracer, traces: Iterable[Mapping[str, Any]]
) -> None:
    """Fold worker trace buffers into the parent trace, chunk-keyed.

    Buffers are sorted by chunk index before re-emission, so the merged
    event sequence is a function of the workload alone — the pool's
    completion order (the one thing the OS controls) never reaches the
    trace. Worker paths are nested under the parent's currently open
    span (the dispatch span, when called from the executor) and every
    merged event gains ``worker`` (pid) and ``chunk`` attributes for
    attribution. Within a buffer the worker's own emit order is kept —
    it is deterministic per chunk.
    """
    if not tracer.enabled:
        return
    base_path = tracer.current_path
    base_depth = tracer.current_depth
    for trace in sorted(traces, key=_chunk_index):
        worker = int(trace.get("pid", 0))
        chunk = int(trace.get("chunk", 0))
        for event in trace.get("events", ()):
            merged = dict(event)
            path = str(event.get("path", ""))
            if base_path:
                merged["path"] = f"{base_path}/{path}" if path else base_path
            if "depth" in merged:
                merged["depth"] = int(merged["depth"]) + base_depth
            attrs = dict(event.get("attrs") or {})
            attrs["worker"] = worker
            attrs["chunk"] = chunk
            merged["attrs"] = attrs
            tracer.absorb(merged)


@deterministic
def _chunk_index(trace: Mapping[str, Any]) -> int:
    """The merge key: which chunk (by submission index) produced a buffer."""
    return int(trace.get("chunk", 0))


@dataclass
class ChunkProfile:
    """One chunk's overhead/compute breakdown (one timeline row).

    Parent-side fields (``serialize_seconds``,
    ``result_deserialize_seconds``, ``queue_seconds``,
    ``round_trip_seconds``, byte counts) are measured by the executor;
    worker-side fields come from the shipped
    :meth:`WorkerTracer.export` payload. ``queue_seconds`` is the
    round trip minus the worker's own wall time — time the chunk spent
    in pool queues or waiting for a CPU, the cost that explains
    negative scaling on an oversubscribed box.
    """

    chunk: int
    worker: int
    inline: bool = False
    retried: bool = False
    payload_bytes_in: int = 0
    payload_bytes_out: int = 0
    serialize_seconds: float = 0.0
    deserialize_seconds: float = 0.0
    compute_seconds: float = 0.0
    result_serialize_seconds: float = 0.0
    result_deserialize_seconds: float = 0.0
    queue_seconds: float = 0.0
    round_trip_seconds: float = 0.0
    tracemalloc_peak_bytes: Optional[int] = None

    def pickle_seconds(self) -> float:
        """Both sides of both pickles: the full serialization tax."""
        return (
            self.serialize_seconds
            + self.deserialize_seconds
            + self.result_serialize_seconds
            + self.result_deserialize_seconds
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chunk": self.chunk,
            "worker": self.worker,
            "inline": self.inline,
            "retried": self.retried,
            "payload_bytes_in": self.payload_bytes_in,
            "payload_bytes_out": self.payload_bytes_out,
            "serialize_seconds": self.serialize_seconds,
            "deserialize_seconds": self.deserialize_seconds,
            "compute_seconds": self.compute_seconds,
            "result_serialize_seconds": self.result_serialize_seconds,
            "result_deserialize_seconds": self.result_deserialize_seconds,
            "pickle_seconds": self.pickle_seconds(),
            "queue_seconds": self.queue_seconds,
            "round_trip_seconds": self.round_trip_seconds,
            "tracemalloc_peak_bytes": self.tracemalloc_peak_bytes,
        }


@dataclass
class DispatchProfile:
    """Aggregate accounting for one traced ``map_chunks`` dispatch.

    The ``*_seconds`` buckets partition the parent's sequential wall
    time inside the dispatch span: payload pickling, pool submission,
    blocking collection (during which workers compute), pool teardown,
    in-process crash retries, result unpickling, and the trace merge.
    Their sum over the dispatch wall is the ``accounted_fraction`` the
    acceptance gate holds at >= 0.9 — if it drops, the executor has
    grown a cost the profile cannot see.
    """

    label: str
    map_call: int
    wall_seconds: float = 0.0
    serialize_seconds: float = 0.0
    submit_seconds: float = 0.0
    collect_seconds: float = 0.0
    teardown_seconds: float = 0.0
    retry_seconds: float = 0.0
    deserialize_seconds: float = 0.0
    merge_seconds: float = 0.0
    chunks: List[ChunkProfile] = field(default_factory=list)

    def accounted_seconds(self) -> float:
        return (
            self.serialize_seconds
            + self.submit_seconds
            + self.collect_seconds
            + self.teardown_seconds
            + self.retry_seconds
            + self.deserialize_seconds
            + self.merge_seconds
        )

    def accounted_fraction(self) -> float:
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.accounted_seconds() / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "map_call": self.map_call,
            "chunks": len(self.chunks),
            "wall_seconds": self.wall_seconds,
            "serialize_seconds": self.serialize_seconds,
            "submit_seconds": self.submit_seconds,
            "collect_seconds": self.collect_seconds,
            "teardown_seconds": self.teardown_seconds,
            "retry_seconds": self.retry_seconds,
            "deserialize_seconds": self.deserialize_seconds,
            "merge_seconds": self.merge_seconds,
            "accounted_seconds": self.accounted_seconds(),
            "accounted_fraction": self.accounted_fraction(),
            "compute_seconds": sum(c.compute_seconds for c in self.chunks),
            "queue_seconds": sum(c.queue_seconds for c in self.chunks),
            "pickle_seconds": sum(c.pickle_seconds() for c in self.chunks),
            "payload_bytes_in": sum(c.payload_bytes_in for c in self.chunks),
            "payload_bytes_out": sum(c.payload_bytes_out for c in self.chunks),
        }


class ParallelProfile:
    """The overhead ledger one executor accumulates across dispatches."""

    def __init__(self) -> None:
        self.dispatches: List[DispatchProfile] = []

    def add(self, dispatch: DispatchProfile) -> None:
        self.dispatches.append(dispatch)

    def to_block(
        self,
        executor: str,
        workers: int,
        parent_pid: int,
        profile_memory: bool,
    ) -> Dict[str, Any]:
        """The additive ``parallel_profile`` run-report block.

        ``{}`` when nothing was profiled (untraced runs), so serial and
        untraced reports keep their exact previous shape. Chunk rows
        are flattened in (dispatch, chunk-index) order; lanes group
        chunks by worker pid in order of first appearance — both
        deterministic given the workload, with only the pid *values*
        schedule-dependent.
        """
        if not self.dispatches:
            return {}
        chunk_rows: List[Dict[str, Any]] = []
        lanes: Dict[int, Dict[str, Any]] = {}
        lane_order: List[int] = []
        for dispatch in self.dispatches:
            for chunk in sorted(dispatch.chunks, key=lambda c: c.chunk):
                row = chunk.to_dict()
                row["label"] = dispatch.label
                row["map_call"] = dispatch.map_call
                chunk_rows.append(row)
                lane = lanes.get(chunk.worker)
                if lane is None:
                    lane = {
                        "worker": chunk.worker,
                        "role": "parent" if chunk.worker == parent_pid
                        else "worker",
                        "chunks": 0,
                        "compute_seconds": 0.0,
                        "queue_seconds": 0.0,
                        "pickle_seconds": 0.0,
                        "payload_bytes_in": 0,
                        "payload_bytes_out": 0,
                    }
                    lanes[chunk.worker] = lane
                    lane_order.append(chunk.worker)
                lane["chunks"] += 1
                lane["compute_seconds"] += chunk.compute_seconds
                lane["queue_seconds"] += chunk.queue_seconds
                lane["pickle_seconds"] += chunk.pickle_seconds()
                lane["payload_bytes_in"] += chunk.payload_bytes_in
                lane["payload_bytes_out"] += chunk.payload_bytes_out
        wall = sum(d.wall_seconds for d in self.dispatches)
        accounted = sum(d.accounted_seconds() for d in self.dispatches)
        peaks = [
            c.tracemalloc_peak_bytes
            for d in self.dispatches
            for c in d.chunks
            if c.tracemalloc_peak_bytes is not None
        ]
        totals: Dict[str, Any] = {
            "dispatches": len(self.dispatches),
            "chunks": len(chunk_rows),
            "wall_seconds": wall,
            "compute_seconds": sum(
                row["compute_seconds"] for row in chunk_rows
            ),
            "queue_seconds": sum(row["queue_seconds"] for row in chunk_rows),
            "pickle_seconds": sum(
                row["pickle_seconds"] for row in chunk_rows
            ),
            "payload_bytes_in": sum(
                row["payload_bytes_in"] for row in chunk_rows
            ),
            "payload_bytes_out": sum(
                row["payload_bytes_out"] for row in chunk_rows
            ),
            "accounted_seconds": accounted,
            "accounted_fraction": (
                accounted / wall if wall > 0.0 else 1.0
            ),
            "tracemalloc_peak_bytes": max(peaks) if peaks else None,
        }
        return {
            "executor": executor,
            "workers": workers,
            "parent_pid": parent_pid,
            "profile_memory": profile_memory,
            "dispatches": [d.to_dict() for d in self.dispatches],
            "chunks": chunk_rows,
            "lanes": [lanes[pid] for pid in lane_order],
            "totals": totals,
        }
