"""The tracer: nested spans, counters, gauges, sink fan-out.

Usage inside instrumented code::

    with tracer.span("mfiblocks.minsup", minsup=k):
        ...
        tracer.count("mfiblocks.mfis_mined", len(mfis))

Design constraints (see ``docs/OBSERVABILITY.md``):

* **near-zero cost when disabled** — the module-level :data:`NULL_TRACER`
  answers every ``span()`` with one shared no-op context manager and
  returns immediately from ``count``/``gauge``; instrumented hot loops
  pay a single attribute check;
* **deterministic when enabled** — event content and ordering derive
  only from the workload; wall time enters exclusively through the
  injected :class:`~repro.obs.clock.Clock` and lands only in the
  declared timestamp fields;
* **single-threaded by design**, like the pipeline it instruments: the
  span stack is plain state, not thread-local.
"""

from __future__ import annotations

from types import TracebackType
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.events import (
    COUNTER,
    GAUGE,
    SCHEMA_VERSION,
    SPAN_END,
    SPAN_START,
    TRACE_START,
)
from repro.obs.report import Aggregator
from repro.obs.sinks import Sink
from repro.version import repro_version

__all__ = ["Tracer", "Span", "NULL_TRACER"]


class _NoopSpan:
    """Shared, reentrant do-nothing context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Span:
    """One active span; created by :meth:`Tracer.span`, used as a CM."""

    __slots__ = ("_tracer", "name", "attrs", "path", "depth", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = ""
        self.depth = 0
        self._start = 0.0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._stack.append(self.name)
        self.path = "/".join(tracer._stack)
        self.depth = len(tracer._stack)
        event: Dict[str, Any] = {
            "event": SPAN_START,
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        self._start = tracer.clock.now()
        event["t"] = self._start
        tracer._emit(event)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        tracer = self._tracer
        end = tracer.clock.now()
        attrs = self.attrs
        if exc_type is not None:
            # An abnormal exit closes the span with the exception type
            # attached, so a trace that ends in a traceback names the
            # span that died and why.
            attrs = dict(attrs)
            attrs["error"] = exc_type.__name__
        event: Dict[str, Any] = {
            "event": SPAN_END,
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
        }
        if attrs:
            event["attrs"] = attrs
        event["t"] = end
        event["duration"] = end - self._start
        tracer._emit(event)
        tracer._stack.pop()
        if exc_type is not None:
            # Flush before the exception propagates: the process may
            # not live to reach Tracer.close().
            for sink in tracer.sinks:
                sink.flush()
        return False


class Tracer:
    """Emits spans/counters/gauges to an aggregator plus optional sinks.

    An enabled tracer always owns an :class:`Aggregator` (the substrate
    of :class:`~repro.obs.report.RunReport`); additional sinks — e.g. a
    :class:`~repro.obs.sinks.JsonlSink` — receive the same events.
    Construct with ``enabled=False`` (or use :data:`NULL_TRACER`) for
    the free-of-charge default.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        sinks: Sequence[Sink] = (),
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.sinks: List[Sink] = list(sinks)
        self.aggregate: Optional[Aggregator] = Aggregator() if enabled else None
        self._stack: List[str] = []
        self._seq = 0
        if enabled:
            self._emit(
                {
                    "event": TRACE_START,
                    "schema": SCHEMA_VERSION,
                    "version": repro_version(),
                }
            )

    # -- emission ------------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        event["seq"] = self._seq
        self._seq += 1
        if self.aggregate is not None:
            self.aggregate.emit(event)
        for sink in self.sinks:
            sink.emit(event)

    def absorb(self, event: Dict[str, Any]) -> None:
        """Emit a pre-built event (e.g. a merged worker event) as our own.

        The event is renumbered into this tracer's ``seq`` space and
        fanned out to the aggregator and sinks like any native event;
        the caller owns path/depth adjustment
        (:func:`repro.obs.worker.merge_worker_events`).
        """
        if not self.enabled:
            return
        self._emit(event)

    @property
    def current_path(self) -> str:
        """The ``/``-joined path of the currently open spans."""
        return "/".join(self._stack)

    @property
    def current_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    # -- instrumentation API -------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Any:
        """Context manager timing a named, nested stage.

        ``attrs`` label the span (e.g. ``minsup=4``); they become part
        of the emitted events but not of the aggregation key, so one
        logical stage executed with varying parameters aggregates into
        a single row with ``calls`` > 1.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attrs)

    def count(self, name: str, value: int = 1) -> None:
        """Accumulate ``value`` onto the named counter."""
        if not self.enabled:
            return
        self._emit(
            {
                "event": COUNTER,
                "name": name,
                "path": "/".join(self._stack),
                "value": value,
            }
        )

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time measurement (last value wins)."""
        if not self.enabled:
            return
        self._emit(
            {
                "event": GAUGE,
                "name": name,
                "path": "/".join(self._stack),
                "value": value,
            }
        )

    def close(self) -> None:
        """Close all attached sinks (flushes the JSONL stream)."""
        for sink in self.sinks:
            sink.close()


#: The default tracer: permanently disabled, shared, stateless.
NULL_TRACER = Tracer(enabled=False)
