"""Supplementary — incremental vs. batch resolution.

Yad Vashem keeps receiving testimonies (30k/year in the 1990s); a
deployed system must absorb them without re-blocking the full database.
This benchmark streams the second half of a corpus into an
:class:`~repro.core.incremental.IncrementalResolver` built on the first
half and checks that (a) per-record absorption is far cheaper than a
full batch re-run and (b) the streamed resolution's recall lands near
the batch pipeline's.
"""

from __future__ import annotations

import time

from bench_common import emit

from repro.core import PipelineConfig, UncertainERPipeline
from repro.core.incremental import IncrementalResolver
from repro.evaluation import GoldStandard, format_table


def test_incremental_vs_batch(italy, italy_gold, benchmark):
    dataset, _persons = italy
    ids = sorted(dataset.record_ids)
    head = dataset.subset(ids[: len(ids) // 2], name="italy-head")
    tail = [dataset[rid] for rid in ids[len(ids) // 2:]]
    config = PipelineConfig(max_minsup=5, ng=3.0, expert_weighting=True)

    # Batch baseline over the full corpus.
    start = time.perf_counter()
    batch = UncertainERPipeline(config).run(dataset)
    batch_seconds = time.perf_counter() - start
    batch_quality = italy_gold.evaluate(batch.pairs)

    # Incremental: build on the head, stream the tail.
    resolver = IncrementalResolver(head, config)
    start = time.perf_counter()
    for record in tail:
        resolver.add_record(record)
    stream_seconds = time.perf_counter() - start
    per_record_ms = 1000.0 * stream_seconds / len(tail)
    incremental_quality = italy_gold.evaluate(resolver.resolution().pairs)

    table = format_table(
        ["mode", "recall", "precision", "seconds"],
        [
            ["batch re-run", batch_quality.recall,
             batch_quality.precision, batch_seconds],
            [f"incremental ({len(tail)} arrivals)",
             incremental_quality.recall,
             incremental_quality.precision, stream_seconds],
        ],
        title=(f"Incremental vs batch resolution "
               f"({len(dataset)} records; {per_record_ms:.1f} ms/arrival)"),
    )
    emit("incremental", table)

    # Absorbing one arrival must be far cheaper than a batch re-run.
    assert per_record_ms / 1000.0 < batch_seconds / 20.0
    # And the streamed resolution must stay in the batch quality's band.
    assert incremental_quality.recall > batch_quality.recall * 0.75
    assert incremental_quality.precision > batch_quality.precision * 0.5

    # Time one absorption for pytest-benchmark (fresh id each round).
    counter = iter(range(10_000_000, 11_000_000))

    def absorb():
        record = tail[0]
        clone = type(record)(
            **{**record.__dict__, "book_id": next(counter)}
        )
        resolver.add_record(clone)

    benchmark.pedantic(absorb, rounds=20, iterations=1)
