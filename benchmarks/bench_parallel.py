"""Parallel executor — speedup and byte-identity vs. serial resolution.

The parallel layer (docs/PARALLELISM.md) promises two things at once:
``--workers N`` output is *byte-identical* to ``--workers 1``, and on a
multi-core box the pairwise-scoring and mining fan-out buys wall-clock
time. This benchmark measures both on one corpus: it resolves the same
dataset at 1, 2, and 4 workers, requires identical ranked output, and
emits a speedup table plus one run report per worker count.

The paper ran on a 24-core server; CI and laptops vary, so the speedup
*target* (>= 1.8x at 4 workers) is reported, not asserted: each run
report carries a ``speedup_ok`` verdict (``null`` when the process has
fewer than 4 usable CPUs and the claim is vacuous) and a miss warns on
stderr; sweeping more workers than usable CPUs also warns, since such a
table measures queue wait, not throughput.
Passing ``--assert-speedup`` turns the miss into a failure — the opt-in
for machines where the throughput claim is meant to hold. The parity
assertion always runs — determinism must not depend on core count.
"""

from __future__ import annotations

import os
import sys
import time

import pytest
from bench_common import emit, emit_report

from repro.core import PipelineConfig, UncertainERPipeline
from repro.datagen import build_corpus
from repro.evaluation import format_series
from repro.obs import Tracer
from repro.parallel import make_executor, partition_evenly

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 1.8

#: Both dispatch flavors are compared at this worker count: the legacy
#: per-chunk-pickled payloads vs the shared-state (fork-inherited
#: registry + shm-backed corpus) path that is now the default.
MODE_WORKERS = 2

#: The seed baseline for the batch-scoring throughput lane: before the
#: batch kernels, the 1-CPU reference container scored 10,699 pairs in
#: 0.1424 s inside ``mfiblocks.score`` (PR-7 ledger baseline,
#: parallel_w1.report.json at commit e7c34cf) — about 75k pairs/s. The
#: vectorized kernels must clear 5x that in the same lane.
SEED_SCORE_PAIRS_PER_SEC = 75_000.0
THROUGHPUT_TARGET = 5.0


@pytest.fixture(scope="module")
def corpus():
    dataset, _persons = build_corpus(
        n_persons=350, seed=11, name="parallel-bench"
    )
    return dataset


def _ranked_lines(resolution):
    # Format before comparing: raw float equality is banned outside
    # tests/ (reprolint RL003), and the CLI contract is about emitted
    # bytes anyway.
    lines = []
    for evidence in resolution.ranked():
        a, b = evidence.pair
        lines.append(f"{a},{b},{evidence.similarity:.6f}")
    return lines


def _cpu_counts():
    """(total CPUs, CPUs this process may use) — they differ in cgroups.

    ``os.cpu_count()`` reports the machine; ``sched_getaffinity`` (where
    the platform has it) reports what the scheduler will actually give
    us, which is what a speedup table should be read against.
    """
    total = os.cpu_count() or 1
    affinity = getattr(os, "sched_getaffinity", None)
    usable = len(affinity(0)) if affinity is not None else total
    return total, usable


def _resolve(dataset, workers, shared_state=None):
    tracer = Tracer()
    executor = make_executor(workers, shared_state=shared_state)
    pipeline = UncertainERPipeline(
        PipelineConfig(ng=3.5, expert_weighting=True),
        tracer=tracer,
        executor=executor,
    )
    start = time.perf_counter()
    resolution = pipeline.run(dataset)
    elapsed = time.perf_counter() - start
    executor.close()
    return _ranked_lines(resolution), elapsed, tracer, executor


def _score_throughput(tracer):
    """(pairs, seconds, pairs/s) of the batch-scoring compute lane.

    ``mfiblocks.score`` now times *only* kernel scoring (support
    enumeration moved to ``mfiblocks.support``), so pairs_pre_cs_sn /
    span-seconds is a clean throughput for the dispatch compute lane.
    """
    from repro.obs import RunReport

    report = RunReport.build(tracer.aggregate)
    seconds = sum(
        stage.total_seconds
        for stage in report.stages
        if stage.name == "mfiblocks.score"
    )
    pairs = report.counters.get("mfiblocks.pairs_pre_cs_sn", 0)
    rate = pairs / seconds if seconds > 0 else 0.0
    return pairs, seconds, rate


def _shared_stats(executor):
    """The shared-dispatch counters for a report's parallel block."""
    stats = executor.stats
    return {
        "shared_state": bool(getattr(executor, "shared_state", False)),
        "shared_dispatches": stats.shared_dispatches,
        "bytes_not_pickled": stats.bytes_not_pickled,
        "shared_segment_bytes": stats.shared_segment_bytes,
        "pools_created": stats.pools_created,
    }


def test_parallel_speedup_and_parity(corpus, benchmark, request):
    lines = {}
    timings = {}
    tracers = {}
    executors = {}
    for workers in WORKER_COUNTS:
        (lines[workers], timings[workers], tracers[workers],
         executors[workers]) = _resolve(corpus, workers)

    # Byte-identity first: a fast wrong answer is not a speedup.
    for workers in WORKER_COUNTS[1:]:
        assert lines[workers] == lines[1], (
            f"--workers {workers} diverged from serial output"
        )

    speedups = {w: timings[1] / timings[w] for w in WORKER_COUNTS}
    cpu_count, cpu_usable = _cpu_counts()
    if max(WORKER_COUNTS) > cpu_usable:
        # An oversubscribed sweep measures queue wait, not throughput;
        # say so where the table is read (the perf ledger keeps the
        # numbers comparable to same-shaped boxes either way).
        print(
            f"WARNING: sweeping up to {max(WORKER_COUNTS)} workers on "
            f"{cpu_usable} usable CPUs - expect queue-wait-bound "
            "slowdowns, not speedups (see repro profile --timeline)",
            file=sys.stderr,
        )
    # The throughput claim needs cores to be real; on a 1-2 CPU runner
    # the pool only adds pickling overhead and the claim is vacuous.
    speedup_ok = (
        speedups[4] >= SPEEDUP_TARGET if cpu_usable >= 4 else None
    )

    # The batch-scoring throughput lane: serial-run kernel pairs/sec
    # against the pre-vectorization seed baseline. This is the verdict
    # that holds on any box, 1-CPU CI included — it measures the
    # kernels, not the pool.
    pairs, score_seconds, pairs_per_sec = _score_throughput(tracers[1])
    throughput_gain = pairs_per_sec / SEED_SCORE_PAIRS_PER_SEC
    throughput_ok = throughput_gain >= THROUGHPUT_TARGET
    batch_throughput = {
        "pairs_pre_cs_sn": pairs,
        "score_seconds": round(score_seconds, 6),
        "pairs_per_second": round(pairs_per_sec, 1),
        "baseline_pairs_per_second": SEED_SCORE_PAIRS_PER_SEC,
        "throughput_gain": round(throughput_gain, 2),
        "throughput_target": THROUGHPUT_TARGET,
        "throughput_ok": throughput_ok,
    }

    for workers in WORKER_COUNTS:
        parallel_block = {
            "workers": workers,
            "cpu_count": cpu_count,
            "cpu_usable": cpu_usable,
            "wall_seconds": round(timings[workers], 4),
            "speedup_vs_serial": round(speedups[workers], 3),
            "speedup_target": SPEEDUP_TARGET,
            "speedup_ok": speedup_ok,
            **_shared_stats(executors[workers]),
        }
        if workers == 1:
            parallel_block["batch_throughput"] = batch_throughput
        emit_report(
            f"parallel_w{workers}", tracers[workers],
            config={"label": f"resolve --workers {workers}"},
            corpus={"name": corpus.name, "n_records": len(corpus)},
            parallel=parallel_block,
            parallel_profile=executors[workers].profile_echo(),
        )

    # Dispatch-mode comparison at MODE_WORKERS: legacy pickled payloads
    # vs the shared-state default. Identical bytes out is asserted; the
    # wall-clock and bytes-not-pickled delta is the point of the mode.
    pickled_lines, pickled_elapsed, pickled_tracer, pickled_executor = (
        _resolve(corpus, MODE_WORKERS, shared_state=False)
    )
    assert pickled_lines == lines[1], (
        "pickled-payload dispatch diverged from serial output"
    )
    assert not pickled_executor.stats.shared_dispatches
    emit_report(
        f"parallel_w{MODE_WORKERS}_pickled", pickled_tracer,
        config={
            "label": f"resolve --workers {MODE_WORKERS} (pickled payloads)"
        },
        corpus={"name": corpus.name, "n_records": len(corpus)},
        parallel={
            "workers": MODE_WORKERS,
            "cpu_count": cpu_count,
            "cpu_usable": cpu_usable,
            "wall_seconds": round(pickled_elapsed, 4),
            "speedup_vs_serial": round(timings[1] / pickled_elapsed, 3),
            "speedup_target": SPEEDUP_TARGET,
            "speedup_ok": speedup_ok,
            **_shared_stats(pickled_executor),
        },
        parallel_profile=pickled_executor.profile_echo(),
    )
    shared_stats = _shared_stats(executors[MODE_WORKERS])
    mode_table = format_series(
        "mode", ["pickled", "shared"],
        [
            ("wall s", [pickled_elapsed, timings[MODE_WORKERS]]),
            (
                "MB not pickled",
                [
                    0.0,
                    shared_stats["bytes_not_pickled"] / 1e6,
                ],
            ),
            (
                "shm MB",
                [0.0, shared_stats["shared_segment_bytes"] / 1e6],
            ),
        ],
        title=(
            f"Executor dispatch modes - {MODE_WORKERS} workers, "
            f"{len(corpus)} records (byte-identical ranked output)"
        ),
    )
    emit("parallel_modes", mode_table)

    table = format_series(
        "workers", list(WORKER_COUNTS),
        [
            ("wall s", [timings[w] for w in WORKER_COUNTS]),
            ("speedup", [speedups[w] for w in WORKER_COUNTS]),
        ],
        title=(
            f"Parallel resolution - {len(corpus)} records, "
            f"{cpu_count} CPUs ({cpu_usable} usable), "
            f"{len(lines[1])} ranked pairs "
            "(byte-identical across worker counts)"
        ),
    )
    emit("parallel_speedup", table)

    if speedup_ok is False:
        message = (
            f"expected >= {SPEEDUP_TARGET}x at 4 workers on "
            f"{cpu_usable} usable CPUs, got {speedups[4]:.2f}x"
        )
        if request.config.getoption("--assert-speedup"):
            pytest.fail(message)
        # Timing is machine-dependent: report the miss, don't gate on it.
        print(f"WARNING: speedup target missed: {message}", file=sys.stderr)

    if not throughput_ok:
        message = (
            f"batch scoring expected >= {THROUGHPUT_TARGET}x the seed "
            f"baseline ({SEED_SCORE_PAIRS_PER_SEC:.0f} pairs/s), got "
            f"{throughput_gain:.2f}x ({pairs_per_sec:.0f} pairs/s)"
        )
        if request.config.getoption("--assert-speedup"):
            pytest.fail(message)
        print(
            f"WARNING: throughput target missed: {message}", file=sys.stderr
        )

    # Kernel for pytest-benchmark: the chunk-planning step that every
    # parallel dispatch pays, independent of pool scheduling noise.
    benchmark(partition_evenly, list(range(10_000)), 8)
