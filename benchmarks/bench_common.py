"""Shared helpers for the benchmark harness (non-fixture utilities)."""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Optional

from repro.obs import RunReport, Tracer

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table/series and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_report(
    name: str,
    tracer: Tracer,
    config: Optional[Mapping[str, Any]] = None,
    corpus: Optional[Mapping[str, Any]] = None,
    parallel: Optional[Mapping[str, Any]] = None,
    parallel_profile: Optional[Mapping[str, Any]] = None,
) -> RunReport:
    """Persist a traced run as ``results/<name>.report.json``.

    Benchmarks that run under a :class:`~repro.obs.Tracer` write the
    exact report schema ``repro resolve --report`` / ``repro profile``
    produce (see docs/OBSERVABILITY.md), so profiling numbers from the
    benchmark tree and the CLI are directly comparable. ``parallel``
    fills the report's executor block (docs/PARALLELISM.md); timing
    benchmarks should always record at least ``workers`` and
    ``cpu_count`` there so BENCH_*.json entries stay comparable across
    machines. ``parallel_profile`` carries the per-chunk overhead
    ledger (``executor.profile_echo()``) that ``repro perf diff`` and
    ``repro profile --timeline`` consume.
    """
    if tracer.aggregate is None:
        raise ValueError("emit_report needs an enabled tracer")
    report = RunReport.build(
        tracer.aggregate, config=config, corpus=corpus, parallel=parallel,
        parallel_profile=parallel_profile,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    report.to_json(RESULTS_DIR / f"{name}.report.json")
    return report
