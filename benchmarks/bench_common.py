"""Shared helpers for the benchmark harness (non-fixture utilities)."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table/series and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
