"""Table 6 — classifier quality with and without the MV bulk submitter.

MV filed ~15% of the Italy records with one fixed five-field pattern;
the paper removes pairs involving MV records to avoid over-fitting and
observes a modest accuracy drop (96.5% -> 94.2%) plus a shift of the
learned tree away from father-name features.

Expected shape: accuracy drops a little without MV; both remain high.
"""

from __future__ import annotations

from bench_common import emit

from repro.classify import ADTreeLearner, evaluate_model
from repro.classify.training import pair_features, train_test_split
from repro.datagen import simplify_tags
from repro.evaluation import format_table


def _accuracy(dataset, labeled, seed=19):
    train, test = train_test_split(sorted(labeled.items()), 0.3, seed=seed)
    model = ADTreeLearner(n_rounds=10).fit(
        pair_features(dataset, [p for p, _ in train]),
        [label for _, label in train],
    )
    result = evaluate_model(
        model,
        pair_features(dataset, [p for p, _ in test]),
        [label for _, label in test],
    )
    return result.accuracy, model


def test_tab06_mv_source(italy, italy_tagged, benchmark):
    dataset, _persons = italy
    labeled = simplify_tags(italy_tagged, maybe_as=None)

    mv_records = {
        record.book_id
        for record in dataset
        if record.source.identifier == "MV"
    }
    assert mv_records, "the Italy corpus must include the MV submitter"

    without_mv = {
        pair: label
        for pair, label in labeled.items()
        if not (pair[0] in mv_records or pair[1] in mv_records)
    }
    n_mv_pairs = len(labeled) - len(without_mv)
    assert n_mv_pairs > 0, "expected tagged pairs involving MV records"

    accuracy_with, model_with = benchmark(_accuracy, dataset, labeled)
    accuracy_without, model_without = _accuracy(dataset, without_mv)

    rows = [
        ["With MV", len(labeled), f"{accuracy_with:.1%}"],
        ["Without MV", len(without_mv), f"{accuracy_without:.1%}"],
    ]
    table = format_table(
        ["Condition", "N", "Accuracy"], rows,
        title=(f"Table 6 analogue - MV source effect "
               f"({len(mv_records)} MV records, {n_mv_pairs} MV pairs)"),
    )
    table += (
        f"\nfeatures (with MV):    {', '.join(model_with.features_used())}"
        f"\nfeatures (without MV): {', '.join(model_without.features_used())}"
    )
    emit("tab06_mv", table)

    # Shape: both models accurate; removing MV does not help.
    assert accuracy_with > 0.85
    assert accuracy_without > 0.80
    assert accuracy_with >= accuracy_without - 0.02
