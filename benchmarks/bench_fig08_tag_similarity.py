"""Figure 8 — tag proportions per similarity bin.

Regenerates the tag-vs-similarity analysis: candidate pairs from the
blocking stage are binned by similarity (0.1 .. 1.0) and the proportion
of each expert tag within the bin is reported.

Expected shape: the Yes share grows monotonically with similarity, the
No share dominates the low bins, and the aberrations the paper hunted
for (high-similarity No, low-similarity Yes) are rare.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from bench_common import emit

from repro.datagen import ExpertTagger, Tag
from repro.evaluation import format_table

BIN_EDGES = [i / 10 for i in range(1, 11)]


def _bin_of(similarity: float) -> float:
    for edge in BIN_EDGES:
        if similarity <= edge + 1e-9:
            return edge
    return 1.0


def test_fig08_tag_similarity(italy, italy_blocking, italy_tagged, benchmark):
    dataset, _persons = italy
    tag_of = {entry.pair: entry.tag for entry in italy_tagged}

    def compute():
        by_bin = defaultdict(Counter)
        for pair, similarity in italy_blocking.pair_scores.items():
            tag = tag_of.get(pair)
            if tag is not None:
                by_bin[_bin_of(similarity)][tag] += 1
        return by_bin

    by_bin = benchmark(compute)

    rows = []
    order = [Tag.NO, Tag.PROBABLY_NO, Tag.MAYBE, Tag.PROBABLY_YES, Tag.YES]
    for edge in BIN_EDGES:
        counts = by_bin.get(edge, Counter())
        total = sum(counts.values())
        row = [edge, total]
        for tag in order:
            share = counts[tag] / total if total else 0.0
            row.append(f"{share:.0%}")
        rows.append(row)
    table = format_table(
        ["similarity <=", "pairs", "No", "Prob-No", "Maybe", "Prob-Yes", "Yes"],
        rows,
        title="Figure 8 analogue - tag proportion by similarity bin",
    )
    emit("fig08_tag_similarity", table)

    # Shape: Yes-share is (weakly) increasing across populated bins,
    # No-share decreasing; top bin is Yes-dominated, bottom No-dominated.
    populated = [
        (edge, by_bin[edge]) for edge in BIN_EDGES
        if sum(by_bin.get(edge, Counter()).values()) >= 10
    ]
    assert len(populated) >= 3
    yes_shares = [
        (c[Tag.YES] + c[Tag.PROBABLY_YES]) / sum(c.values())
        for _e, c in populated
    ]
    no_shares = [
        (c[Tag.NO] + c[Tag.PROBABLY_NO]) / sum(c.values())
        for _e, c in populated
    ]
    assert yes_shares[-1] > 0.5
    assert no_shares[0] > 0.5
    assert yes_shares[-1] > yes_shares[0]
    assert no_shares[-1] < no_shares[0]
