"""Table 10 — comparative quality of blocking techniques.

Runs MFIBlocks and the ten baseline blockers on the Italy-style corpus
(no classification, default configurations — the survey protocol the
paper follows) and reports recall and precision per technique.

Expected shapes:

* MFIBlocks dominates precision by a wide margin (the paper reports two
  orders of magnitude; the gap shrinks at laptop scale but stays large);
* StBl / ACl / ESoNe sit at (near-)total recall with tiny precision;
* MFIBlocks recall lands in the same band as SuAr (~0.7-0.9), the
  balanced precision/recall tradeoff uncertain ER requires.
"""

from __future__ import annotations

from bench_common import emit

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.blocking.baselines import ALL_BASELINES
from repro.evaluation import format_table


def test_tab10_blocking_comparison(italy, italy_gold, benchmark):
    dataset, _persons = italy

    qualities = {}
    mfi = MFIBlocks(MFIBlocksConfig(max_minsup=5, ng=3.0))
    result = benchmark.pedantic(mfi.run, args=(dataset,), rounds=1, iterations=1)
    qualities["MFIBlocks"] = italy_gold.evaluate(result.candidate_pairs)

    for cls in ALL_BASELINES:
        algorithm = cls()
        qualities[algorithm.name] = italy_gold.evaluate(
            algorithm.run(dataset).candidate_pairs
        )

    rows = [
        [name, quality.recall, f"{quality.precision:.4f}",
         quality.n_candidates]
        for name, quality in qualities.items()
    ]
    table = format_table(
        ["Blocking Algorithm", "Recall", "Precision", "Pairs"], rows,
        title=(f"Table 10 analogue - comparative blocking quality "
               f"({len(dataset)} records, {len(italy_gold)} true pairs)"),
    )
    emit("tab10_blocking", table)

    mfib = qualities["MFIBlocks"]
    # MFIBlocks is the most precise technique, by a wide margin.
    best_other_precision = max(
        quality.precision
        for name, quality in qualities.items()
        if name != "MFIBlocks"
    )
    assert mfib.precision > best_other_precision
    token_based = [qualities[name] for name in ("StBl", "ACl", "ESoNe")]
    for quality in token_based:
        # near-total recall, minuscule precision
        assert quality.recall > 0.95
        assert quality.precision < mfib.precision / 5
    # MFIBlocks holds a balanced recall, in SuAr's band.
    assert 0.5 < mfib.recall <= qualities["SuAr"].recall + 0.25
