"""Figure 12 — FP-Growth/FPMax run-time vs. minsup.

Regenerates the four series of Figure 12: two corpus sizes, each mined
with and without most-frequent-item pruning (0.3% here; the paper prunes
0.03% of a vastly larger vocabulary), across decreasing minsup.

Expected shape: runtime increases sharply (near-exponentially) as minsup
decreases, roughly linearly with dataset size, and pruning cuts it by a
large factor. We run laptop-scale corpora (the paper used 600k and 6.5M
records on a 24-core server); the curves' shape is the reproduction
target.
"""

from __future__ import annotations

import os
import time

import pytest
from bench_common import emit, emit_report

from repro.datagen import build_corpus
from repro.evaluation import format_series
from repro.mining import maximal_frequent_itemsets, prune_frequent_items
from repro.obs import Tracer

MINSUPS = (5, 4, 3)
PRUNE_FRACTION = 0.003


def _mine_times(transactions, minsups):
    # Warm up caches/allocator so the first measured point is not inflated.
    maximal_frequent_itemsets(transactions[:200], max(minsups))
    times = []
    for minsup in minsups:
        start = time.perf_counter()
        maximal_frequent_itemsets(transactions, minsup)
        times.append(time.perf_counter() - start)
    return times


@pytest.fixture(scope="module")
def corpora():
    small, _ = build_corpus(n_persons=700, seed=3, name="fig12-small")
    large, _ = build_corpus(n_persons=2100, seed=3, name="fig12-large")
    return small, large


def test_fig12_runtime_by_minsup(corpora, benchmark):
    small, large = corpora
    series = []
    for dataset in (large, small):
        bags = dataset.item_bags
        plain = list(bags.values())
        pruned_bags, _ = prune_frequent_items(bags, PRUNE_FRACTION)
        pruned = list(pruned_bags.values())
        label = f"{len(dataset) // 100 / 10:.1f}K"
        series.append((label, _mine_times(plain, MINSUPS)))
        series.append((f"{label},Prune", _mine_times(pruned, MINSUPS)))

    table = format_series(
        "minsup", list(MINSUPS), series,
        title=(f"Figure 12 analogue - FPMax runtime in seconds "
               f"({len(large)} vs {len(small)} records, prune={PRUNE_FRACTION:.1%})"),
    )
    emit("fig12_runtime", table)

    large_plain = series[0][1]
    large_pruned = series[1][1]
    small_plain = series[2][1]

    # Shape 1: runtime grows as minsup decreases — strictly from the
    # easiest to the hardest setting in every series (intermediate
    # points may wobble by scheduler noise on the fast pruned runs).
    for _name, times in series:
        assert times[-1] > times[0]
    # Shape 2: pruning helps substantially at the hardest setting.
    assert large_pruned[-1] < large_plain[-1] * 0.6
    # Shape 3: the larger corpus is slower than the smaller one.
    assert large_plain[-1] > small_plain[-1]

    # Persist a traced mining pass in the CLI's run-report schema, so
    # benchmark-tree and `repro profile` numbers are comparable.
    tracer = Tracer()
    maximal_frequent_itemsets(
        list(small.item_bags.values()), MINSUPS[-1], tracer=tracer
    )
    # Worker and CPU counts make BENCH_*.json entries comparable across
    # machines: a 1-worker time from a 24-core box and one from a
    # laptop are different experiments.
    emit_report(
        "fig12_mining", tracer,
        config={"label": f"FPMax minsup={MINSUPS[-1]}"},
        corpus={"name": small.name, "n_records": len(small)},
        parallel={"workers": 1, "cpu_count": os.cpu_count()},
    )

    # Time one representative kernel for pytest-benchmark.
    benchmark(maximal_frequent_itemsets, list(small.item_bags.values()), 5)
