"""Table 3 — item-type prevalence.

Regenerates the prevalence table (records holding each item type, and
the fraction) for the Italy-style and RandomSet-style corpora side by
side. Expected shape: last/first name near-universal; gender high; DOB
around two-thirds; father's name markedly higher in the Italian
community ("a person's father name was a major part of their identity in
this community"); maiden names rare.
"""

from __future__ import annotations

from bench_common import emit

from repro.evaluation import format_table
from repro.records.patterns import item_type_prevalence


def test_tab03_item_type_prevalence(italy, random_set, benchmark):
    italy_dataset, _ = italy
    random_dataset, _ = random_set

    italy_rows = benchmark(item_type_prevalence, italy_dataset)
    random_rows = item_type_prevalence(random_dataset)

    rows = []
    for (label, italy_n, italy_f), (_l2, rand_n, rand_f) in zip(
        italy_rows, random_rows
    ):
        rows.append([label, italy_n, f"{italy_f:.0%}", rand_n, f"{rand_f:.0%}"])
    table = format_table(
        ["Item Type", "Italy #", "Italy %", "Random #", "Random %"],
        rows,
        title=(f"Table 3 analogue - item type prevalence "
               f"(Italy {len(italy_dataset)}, Random {len(random_dataset)} records)"),
    )
    emit("tab03_prevalence", table)

    italy_f = {label: frac for label, _n, frac in italy_rows}
    random_f = {label: frac for label, _n, frac in random_rows}

    # Shape assertions mirroring Table 3's ordering.
    for fractions in (italy_f, random_f):
        assert fractions["Last Name"] > 0.9
        assert fractions["First Name"] > 0.9
        assert fractions["Gender"] > 0.6
        assert 0.3 < fractions["DOB"] < 0.95
        assert fractions["Maiden Name"] < 0.35
        assert fractions["Mother's Maiden"] < 0.35
        assert fractions["Spouse Name"] < fractions["Mother's Name"] + 0.25
        assert fractions["Permanent Place"] > fractions["Death Place"]
