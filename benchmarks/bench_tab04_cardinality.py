"""Table 4 — item-type cardinality.

Regenerates the cardinality table: distinct items and the average number
of records per item, for the Italy-style and RandomSet-style corpora.
Expected shape: gender has exactly 2 items with huge records/item;
names have high cardinality with few records each; date components are
bounded (<=31 days, <=12 months); the multi-community RandomSet has a
larger name vocabulary than the homogeneous Italy set.
"""

from __future__ import annotations

from bench_common import emit

from repro.evaluation import format_table
from repro.records.itembag import ItemType
from repro.records.patterns import item_type_cardinality


def test_tab04_item_type_cardinality(italy, random_set, benchmark):
    italy_dataset, _ = italy
    random_dataset, _ = random_set

    italy_rows = benchmark(item_type_cardinality, italy_dataset)
    random_rows = item_type_cardinality(random_dataset)
    italy_by_type = {row.item_type: row for row in italy_rows}
    random_by_type = {row.item_type: row for row in random_rows}

    rows = []
    for item_type in ItemType:
        italy_row = italy_by_type[item_type]
        random_row = random_by_type[item_type]
        rows.append([
            item_type.name.replace("_", " ").title(),
            italy_row.n_items, round(italy_row.records_per_item, 1),
            random_row.n_items, round(random_row.records_per_item, 1),
        ])
    table = format_table(
        ["Item Type", "Italy items", "Italy rec/item",
         "Random items", "Random rec/item"],
        rows,
        title="Table 4 analogue - item type cardinality",
        float_format=".1f",
    )
    emit("tab04_cardinality", table)

    for by_type in (italy_by_type, random_by_type):
        assert by_type[ItemType.GENDER].n_items == 2
        assert by_type[ItemType.BIRTH_DAY].n_items <= 31
        assert by_type[ItemType.BIRTH_MONTH].n_items <= 12
        # names: many values, few records per value
        assert by_type[ItemType.LAST_NAME].n_items > 20
        assert (by_type[ItemType.LAST_NAME].records_per_item
                < by_type[ItemType.GENDER].records_per_item)
    # the stratified multi-community sample has a broader vocabulary
    assert (random_by_type[ItemType.LAST_NAME].n_items
            > italy_by_type[ItemType.LAST_NAME].n_items)
