"""Supplementary — submitter deduplication (the Section 2 open problem).

The paper counts 514,251 submitters by naive (first, last, city)
grouping and acknowledges the figure is inflated. This benchmark runs
the submitter-ER extension and asserts the expected structure: the
naive count overcounts the ground truth, and ER moves the estimate
toward the truth with high precision at conservative thresholds.
"""

from __future__ import annotations

from bench_common import emit

from repro.evaluation import format_table
from repro.submitters import (
    SubmitterGenerator,
    dedupe_submitters,
    group_by_signature,
)


def test_submitter_dedup(benchmark):
    records = SubmitterGenerator(n_submitters=500, seed=43).generate()
    truth = len({record.submitter_id for record in records})
    naive = len(group_by_signature(records))

    rows = []
    results = {}
    for threshold in (0.95, 0.92, 0.88):
        if threshold == 0.92:  # reprolint: disable=RL003 -- literal loop constant, not a computed score
            result = benchmark.pedantic(
                dedupe_submitters, args=(records, threshold),
                rounds=1, iterations=1,
            )
        else:
            result = dedupe_submitters(records, threshold)
        precision, recall = result.evaluate(records)
        results[threshold] = (result, precision, recall)
        rows.append([threshold, result.n_entities, precision, recall])

    table = format_table(
        ["threshold", "entities", "precision", "recall"], rows,
        title=(f"Submitter ER - {len(records)} pages, {truth} true "
               f"submitters, naive grouping counts {naive}"),
    )
    emit("submitters", table)

    # The naive count overcounts reality...
    assert naive > truth * 1.15
    # ...and every ER threshold moves the estimate toward the truth.
    for threshold, (result, precision, _recall) in results.items():
        assert truth <= result.n_entities < naive
        assert precision > 0.85
    # Conservative merging is the more precise end of the dial.
    assert results[0.95][1] >= results[0.88][1]
