"""Supplementary — multi-granularity resolution (Section 4.1 discussion).

Not a numbered paper artifact, but a claim the paper makes and we
implement: "by allowing a looser compact set setting and denser
neighborhoods, entities can be broadened from a single individual to a
granularity of nuclear family". This benchmark quantifies it: the same
pipeline, run with the loosened family configuration, must recover more
*family-level* pairs (the Capelluto effect of Figures 13-14) than the
person-level configuration does.
"""

from __future__ import annotations

from bench_common import emit

from repro.core import (
    PipelineConfig,
    UncertainERPipeline,
    family_config,
    family_gold_standard,
)
from repro.evaluation import GoldStandard, format_table


def test_granularity_family_vs_person(italy, benchmark):
    dataset, persons = italy
    person_gold = GoldStandard.from_dataset(dataset)
    fam_gold = family_gold_standard(dataset, persons)

    base = PipelineConfig(max_minsup=5, ng=2.5, expert_weighting=True,
                          same_source_discard=True)
    person_resolution = benchmark.pedantic(
        UncertainERPipeline(base).run, args=(dataset,),
        rounds=1, iterations=1,
    )
    family_resolution = UncertainERPipeline(family_config(base)).run(dataset)

    rows = []
    measurements = {}
    for config_name, resolution in (("person-level", person_resolution),
                                    ("family-level", family_resolution)):
        for gold_name, gold in (("person", person_gold),
                                ("family", fam_gold)):
            quality = gold.evaluate(resolution.pairs)
            measurements[(config_name, gold_name)] = quality
            rows.append([config_name, gold_name, quality.recall,
                         quality.precision])
    table = format_table(
        ["configuration", "gold standard", "recall", "precision"], rows,
        title=(f"Granularity - person vs family configuration "
               f"({len(person_gold)} person pairs, {len(fam_gold)} family pairs)"),
    )
    emit("granularity", table)

    # The loosened configuration recovers more family pairs...
    assert (measurements[("family-level", "family")].recall
            > measurements[("person-level", "family")].recall)
    # ...while family pairs are a strict superset of person pairs.
    assert len(fam_gold) > len(person_gold)
