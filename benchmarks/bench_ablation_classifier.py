"""Ablation — ADTree vs. a standard CART decision tree.

The paper justifies ADTrees by robustness to missing values on the
schema-diverse multi-source data (Section 4.2). This ablation trains
both classifiers on the same tagged pairs and evaluates them twice:

* on the ordinary test split;
* on a *sparsified* test split where a fraction of each vector's
  features is blanked, simulating even sparser sources.

Expected shape: comparable accuracy on dense data; the ADTree degrades
more gracefully as features go missing.
"""

from __future__ import annotations

import random

from bench_common import emit

from repro.classify import ADTreeLearner, CartLearner, evaluate_model
from repro.classify.training import pair_features, train_test_split
from repro.datagen import simplify_tags
from repro.evaluation import format_table


def _sparsify(vectors, fraction, seed=5):
    rng = random.Random(seed)
    sparsified = []
    for vector in vectors:
        copy = dict(vector)
        present = [name for name, value in copy.items() if value is not None]
        n_blank = int(len(present) * fraction)
        for name in rng.sample(present, n_blank):
            copy[name] = None
        sparsified.append(copy)
    return sparsified


def test_ablation_adtree_vs_cart(italy, italy_tagged, benchmark):
    dataset, _persons = italy
    labeled = simplify_tags(italy_tagged, maybe_as=None)
    train, test = train_test_split(sorted(labeled.items()), 0.3, seed=3)
    train_x = pair_features(dataset, [p for p, _ in train])
    train_y = [label for _, label in train]
    test_x = pair_features(dataset, [p for p, _ in test])
    test_y = [label for _, label in test]

    adtree = benchmark.pedantic(
        ADTreeLearner(n_rounds=10).fit, args=(train_x, train_y),
        rounds=1, iterations=1,
    )
    cart = CartLearner(max_depth=8).fit(train_x, train_y)

    rows = []
    accuracies = {}
    for fraction in (0.0, 0.3, 0.6):
        eval_x = test_x if fraction == 0.0 else _sparsify(test_x, fraction)  # reprolint: disable=RL003 -- literal loop constant, not a computed score
        adtree_acc = evaluate_model(adtree, eval_x, test_y).accuracy
        cart_acc = evaluate_model(cart, eval_x, test_y).accuracy
        accuracies[fraction] = (adtree_acc, cart_acc)
        rows.append([f"{fraction:.0%}", f"{adtree_acc:.1%}", f"{cart_acc:.1%}"])

    table = format_table(
        ["features blanked", "ADTree accuracy", "CART accuracy"], rows,
        title="Ablation - ADTree vs CART under increasing sparsity",
    )
    emit("ablation_classifier", table)

    dense_ad, dense_cart = accuracies[0.0]
    sparse_ad, sparse_cart = accuracies[0.6]
    # Both competent when dense.
    assert dense_ad > 0.85
    assert dense_cart > 0.80
    # The ADTree's missing-value handling degrades no worse than CART's
    # forced-routing under heavy sparsity.
    assert (dense_ad - sparse_ad) <= (dense_cart - sparse_cart) + 0.03
    assert sparse_ad > 0.6
