"""Table 5 — classifier quality under the three Maybe treatments.

The expert tags include ~6% Maybe pairs; the paper compares training
with Maybe:=No, omitting Maybe, and keeping Maybe as a third class to
identify at run time. Expected shape: accuracy stable around a high
level across all three, with a slight edge to the Maybe-omitted model.
"""

from __future__ import annotations

from bench_common import emit

from repro.classify import ADTreeLearner, OneVsRestADTree, evaluate_model
from repro.classify.training import pair_features, train_test_split
from repro.datagen import Tag, simplify_tags
from repro.evaluation import format_table


def _split(pairs_labels, seed=19):
    return train_test_split(sorted(pairs_labels.items()), 0.3, seed=seed)


def _accuracy_binary(dataset, labeled, learner):
    train, test = _split(labeled)
    model = learner.fit(
        pair_features(dataset, [p for p, _ in train]),
        [label for _, label in train],
    )
    result = evaluate_model(
        model,
        pair_features(dataset, [p for p, _ in test]),
        [label for _, label in test],
    )
    return result.accuracy, len(labeled)


def test_tab05_maybe_treatments(italy, italy_tagged, benchmark):
    dataset, _persons = italy
    learner = ADTreeLearner(n_rounds=10)

    # Condition 1: Maybe := No.
    as_no = simplify_tags(italy_tagged, maybe_as=False)
    accuracy_no, n_no = _accuracy_binary(dataset, as_no, learner)

    # Condition 2: Maybe omitted.
    omitted = simplify_tags(italy_tagged, maybe_as=None)
    accuracy_omitted, n_omitted = benchmark(
        _accuracy_binary, dataset, omitted, learner
    )

    # Condition 3: identify Maybe as its own class (one-vs-rest).
    three_class = {
        entry.pair: (
            "maybe" if entry.tag is Tag.MAYBE
            else ("yes" if entry.label else "no")
        )
        for entry in italy_tagged
    }
    train, test = _split(three_class)
    ovr = OneVsRestADTree(learner).fit(
        pair_features(dataset, [p for p, _ in train]),
        [label for _, label in train],
    )
    accuracy_three = ovr.accuracy(
        pair_features(dataset, [p for p, _ in test]),
        [label for _, label in test],
    )

    rows = [
        ["Maybe := No", n_no, f"{accuracy_no:.1%}"],
        ["Maybe values omitted", n_omitted, f"{accuracy_omitted:.1%}"],
        ["Identify Maybe values", len(three_class), f"{accuracy_three:.1%}"],
    ]
    table = format_table(
        ["Condition", "N", "Accuracy"], rows,
        title="Table 5 analogue - classifier quality vs Maybe handling",
    )
    emit("tab05_maybe", table)

    n_maybe = sum(1 for entry in italy_tagged if entry.tag is Tag.MAYBE)
    assert n_maybe > 0

    # Shape: all accuracies high and within a few points of each other;
    # omitting Maybe is at least as good as folding it into No.
    assert accuracy_no > 0.85
    assert accuracy_omitted > 0.85
    assert accuracy_three > 0.80
    assert accuracy_omitted >= accuracy_no - 0.01
    assert abs(accuracy_omitted - accuracy_no) < 0.08
