"""Durable streaming ingestion — throughput and tail latency of the WAL.

The durable write path (``docs/RESILIENCE.md``, Durability) buys
crash-recoverable batches with two fsyncs per batch; this benchmark
prices that durability on one corpus. The second half of the Italy set
streams into an :class:`~repro.core.incremental.IncrementalResolver`
built on the first half, in fixed-size batches, under three modes:

* ``in-memory`` — no WAL at all (the PR-9 baseline);
* ``wal-nofsync`` — begin/commit logging without per-append fsync
  (what ``repro ingest --no-fsync`` does; survives process crashes,
  not power loss);
* ``wal-fsync`` — the full durability contract.

For each mode it reports sustained records/sec and the p99 add-batch
latency, and asserts the invariant that makes the comparison honest:
the ranked output is identical across all three — durability is a
latency cost, never a semantics change.

The run report (``results/streaming.report.json``) feeds the perf
ledger; its counters are workload-deterministic (batches, records,
commits), while throughput and latency ride in gauges and
``parallel.wall_seconds`` where ``repro perf diff`` applies its
noise-floored ratio check.
"""

from __future__ import annotations

import os
import time

from bench_common import emit, emit_report

from repro.core import PipelineConfig
from repro.core.incremental import IncrementalResolver
from repro.evaluation import format_table
from repro.obs import Tracer
from repro.resilience.wal import WriteAheadLog

BATCH_SIZE = 32


def _ranked_lines(resolution):
    # Format before comparing: raw float equality is banned outside
    # tests/ (reprolint RL003), and the durability contract is about
    # emitted bytes anyway.
    lines = []
    for evidence in resolution.ranked():
        a, b = evidence.pair
        lines.append(f"{a},{b},{evidence.similarity:.6f}")
    return lines


def _stream(head, tail, config, wal=None, tracer=None):
    """Stream ``tail`` in batches; returns (lines, stats dict)."""
    resolver = IncrementalResolver(head, config, wal=wal)
    batches = [
        tail[start:start + BATCH_SIZE]
        for start in range(0, len(tail), BATCH_SIZE)
    ]
    latencies = []
    start = time.perf_counter()
    for batch in batches:
        tick = time.perf_counter()
        resolver.add_records(batch)
        latencies.append(time.perf_counter() - tick)
    total = time.perf_counter() - start
    if tracer is not None:
        tracer.count("ingest.batches", len(batches))
        tracer.count("ingest.records_added", len(tail))
        if wal is not None:
            tracer.count(
                "wal.batches_committed",
                resolver.wal_counters()["batches_committed"],
            )
    if wal is not None:
        wal.close()
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return _ranked_lines(resolver.resolution()), {
        "batches": len(batches),
        "seconds": total,
        "records_per_sec": len(tail) / total,
        "p99_batch_ms": 1000.0 * p99,
        "segments": (
            resolver.wal_counters().get("segments", 0) if wal else 0
        ),
    }


def test_streaming_durability_cost(italy, benchmark, tmp_path):
    dataset, _persons = italy
    ids = sorted(dataset.record_ids)
    head = dataset.subset(ids[: len(ids) // 2], name="italy-head")
    tail = [dataset[rid] for rid in ids[len(ids) // 2:]]
    config = PipelineConfig(max_minsup=5, ng=3.0, expert_weighting=True)

    tracer = Tracer()
    lines = {}
    stats = {}
    lines["in-memory"], stats["in-memory"] = _stream(head, tail, config)
    lines["wal-nofsync"], stats["wal-nofsync"] = _stream(
        head, tail, config,
        wal=WriteAheadLog(tmp_path / "wal-nofsync", fsync=False),
    )
    with tracer.span("ingest.stream"):
        lines["wal-fsync"], stats["wal-fsync"] = _stream(
            head, tail, config,
            wal=WriteAheadLog(tmp_path / "wal-fsync", fsync=True),
            tracer=tracer,
        )

    # Durability must never change the resolution, only its latency.
    for mode in ("wal-nofsync", "wal-fsync"):
        assert lines[mode] == lines["in-memory"], (
            f"{mode} ranked output diverged from in-memory ingestion"
        )

    table = format_table(
        ["mode", "records/sec", "p99 batch ms", "seconds", "wal segments"],
        [
            [mode, stats[mode]["records_per_sec"],
             stats[mode]["p99_batch_ms"], stats[mode]["seconds"],
             stats[mode]["segments"]]
            for mode in ("in-memory", "wal-nofsync", "wal-fsync")
        ],
        title=(f"Streaming ingestion, {len(tail)} arrivals in "
               f"{stats['wal-fsync']['batches']} batches of <= {BATCH_SIZE} "
               f"onto {len(head)} base records"),
    )
    emit("streaming", table)

    for mode in ("in-memory", "wal-nofsync", "wal-fsync"):
        key = mode.replace("-", "_")
        tracer.gauge(f"ingest.{key}.records_per_sec",
                     stats[mode]["records_per_sec"])
        tracer.gauge(f"ingest.{key}.p99_batch_ms",
                     stats[mode]["p99_batch_ms"])
    emit_report(
        "streaming", tracer,
        config=config.to_echo(),
        corpus={"records": len(dataset), "base": len(head),
                "arrivals": len(tail), "batch_size": BATCH_SIZE},
        parallel={"workers": 1, "cpu_count": os.cpu_count() or 1,
                  "wall_seconds": stats["wal-fsync"]["seconds"]},
    )

    # Time one durable batch for pytest-benchmark (fresh ids per round).
    bench_wal = WriteAheadLog(tmp_path / "wal-bench", fsync=True)
    bench_resolver = IncrementalResolver(head, config, wal=bench_wal)
    counter = iter(range(20_000_000, 21_000_000))

    def absorb_batch():
        batch = [
            type(record)(**{**record.__dict__, "book_id": next(counter)})
            for record in tail[:BATCH_SIZE]
        ]
        bench_resolver.add_records(batch)

    benchmark.pedantic(absorb_batch, rounds=10, iterations=1)
    bench_wal.close()
