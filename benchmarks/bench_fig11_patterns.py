"""Figure 11 — data-pattern counts.

Regenerates the pattern histogram: how many distinct data patterns are
shared by <=10 / <=100 / <=1k / <=10k / more records, and how many
records those patterns cover. Expected shape (Section 6.2): a long tail
of rare patterns alongside a few very common ones covering most records;
the full-information pattern is rare.
"""

from __future__ import annotations

from bench_common import emit

from repro.evaluation import format_table
from repro.records.patterns import (
    full_information_pattern_count,
    pattern_histogram,
)


def test_fig11_pattern_counts(random_set, benchmark):
    dataset, _persons = random_set

    # Bucket edges scaled from the paper's (10, 100, 1k, 10k) to the
    # bench corpus size (the paper's corpus is ~3000x larger).
    edges = (5, 20, 100, 500)
    buckets = benchmark(pattern_histogram, dataset, edges)

    rows = [
        [bucket.label, bucket.n_patterns, bucket.n_records]
        for bucket in buckets
    ]
    full_info = full_information_pattern_count(dataset)
    table = format_table(
        ["records sharing pattern (<=)", "# patterns", "sum of records"],
        rows,
        title=f"Figure 11 analogue - data pattern counts "
              f"({len(dataset)} records)",
    )
    table += f"\nfull-information pattern records: {full_info}"
    emit("fig11_patterns", table)

    # Shape assertions (Section 6.2): the vast majority of *patterns*
    # are rare, while the majority of *records* live in the common
    # patterns; the full-information pattern is rare.
    total_patterns = sum(bucket.n_patterns for bucket in buckets)
    assert buckets[0].n_patterns > total_patterns * 0.7
    total_records = sum(bucket.n_records for bucket in buckets)
    assert total_records == len(dataset)
    common_records = sum(bucket.n_records for bucket in buckets[1:])
    assert common_records > buckets[0].n_records
    assert full_info < len(dataset) * 0.05
