"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports (run pytest with ``-s`` to see
them) and also writes the rendered text to ``benchmarks/results/``.
The ``benchmark`` fixture times the experiment's computational kernel so
``pytest benchmarks/ --benchmark-only`` doubles as a performance suite.

Corpus scales are chosen so the whole harness finishes in minutes on a
laptop; the *shapes* of the published results are what we reproduce (see
EXPERIMENTS.md), not absolute magnitudes from the authors' 6.5M-record
production data.
"""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig, UncertainERPipeline
from repro.datagen import ExpertTagger, build_corpus, build_italy_set, simplify_tags
from repro.evaluation import GoldStandard


def pytest_addoption(parser):
    parser.addoption(
        "--assert-speedup",
        action="store_true",
        default=False,
        help="fail bench_parallel if 4 workers miss the speedup target "
        "(default: report speedup_ok and warn; timing claims are "
        "machine-dependent, byte-identity is asserted regardless)",
    )


@pytest.fixture(scope="session")
def italy(request):
    """ItalySet analogue at bench scale (~1,400 records incl. MV)."""
    dataset, persons = build_italy_set(scale=0.15, seed=23)
    return dataset, persons


@pytest.fixture(scope="session")
def italy_gold(italy):
    dataset, _persons = italy
    return GoldStandard.from_dataset(dataset)


@pytest.fixture(scope="session")
def italy_blocking(italy):
    """One blocking pass over the Italy corpus (candidate-pair source)."""
    dataset, _persons = italy
    pipeline = UncertainERPipeline(
        PipelineConfig(max_minsup=5, ng=3.5, expert_weighting=True)
    )
    return pipeline.block(dataset)


@pytest.fixture(scope="session")
def italy_tagged(italy, italy_blocking):
    """Expert tags over the Italy candidate pairs (the paper's ~10k set)."""
    dataset, _persons = italy
    tagger = ExpertTagger(dataset, seed=97)
    return tagger.tag_pairs(italy_blocking.candidate_pairs)


@pytest.fixture(scope="session")
def italy_labels(italy_tagged):
    """Binary labels with Maybe omitted (the paper's preferred setup)."""
    return simplify_tags(italy_tagged, maybe_as=None)


@pytest.fixture(scope="session")
def random_set(request):
    """RandomSet analogue: six communities, bench scale (~2,300 records)."""
    dataset, persons = build_corpus(
        n_persons=1000, seed=29, name="random-set-bench"
    )
    return dataset, persons
