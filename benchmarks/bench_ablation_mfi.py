"""Ablation — MFI mining strategy: FPMax vs. mine-all-then-filter.

MFIBlocks only needs *maximal* frequent itemsets. FPMax prunes subsumed
branches during the search; the naive alternative mines every frequent
itemset and filters maximal ones afterwards. Both must return identical
MFIs; FPMax should be substantially faster on realistic item bags,
where frequent itemsets vastly outnumber maximal ones.
"""

from __future__ import annotations

import time

from bench_common import emit

from repro.datagen import build_corpus
from repro.evaluation import format_table
from repro.mining import (
    frequent_itemsets,
    maximal_frequent_itemsets,
    maximal_via_filter,
)


def test_ablation_mfi_strategy(benchmark):
    dataset, _persons = build_corpus(n_persons=250, seed=7, name="mfi-ablation")
    transactions = list(dataset.item_bags.values())

    rows = []
    ratios = []
    for minsup in (5, 4, 3):
        start = time.perf_counter()
        fast = maximal_frequent_itemsets(transactions, minsup)
        fast_time = time.perf_counter() - start

        start = time.perf_counter()
        slow = maximal_via_filter(transactions, minsup)
        slow_time = time.perf_counter() - start

        n_frequent = len(frequent_itemsets(transactions, minsup))
        assert {m.items for m in fast} == {m.items for m in slow}
        ratios.append(slow_time / fast_time if fast_time else float("inf"))
        rows.append([minsup, len(fast), n_frequent,
                     fast_time, slow_time])

    table = format_table(
        ["minsup", "MFIs", "frequent itemsets", "FPMax sec", "filter sec"],
        rows,
        title=(f"Ablation - FPMax vs mine-all-then-filter "
               f"({len(dataset)} records)"),
        float_format=".3f",
    )
    emit("ablation_mfi", table)

    # FPMax wins at the hardest setting (low minsup, many itemsets).
    assert ratios[-1] > 1.0
    # MFIs are a strict subset of frequent itemsets.
    for _minsup, n_mfi, n_freq, _a, _b in rows:
        assert n_mfi <= n_freq

    benchmark(maximal_frequent_itemsets, transactions, 3)
