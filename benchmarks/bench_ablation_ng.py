"""Ablation — sparse-neighborhood enforcement: skip vs. threshold mode.

Algorithm 1's lines 9-15 can be read two ways (see
:class:`repro.blocking.scoring.SparseNeighborhoodFilter`): the literal
``threshold`` semantics raise ``minTh`` at the first violation and prune
the whole tail of an iteration, while the calibrated ``skip`` semantics
discard only violating blocks. This ablation quantifies the difference.

Expected shape: skip mode recovers substantially more recall at similar
precision, which is why it is the default; threshold mode emits fewer
pairs (stricter CS pruning).
"""

from __future__ import annotations

from bench_common import emit

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.blocking.scoring import BlockScorer, ScoringMethod
from repro.evaluation import format_table


def test_ablation_sn_mode(italy, italy_gold, benchmark):
    dataset, _persons = italy

    qualities = {}
    pair_counts = {}
    for mode in ("skip", "threshold"):
        config = MFIBlocksConfig(
            max_minsup=5, ng=3.5, sn_mode=mode,
            scoring=BlockScorer(method=ScoringMethod.WEIGHTED),
        )
        if mode == "skip":
            result = benchmark.pedantic(
                MFIBlocks(config).run, args=(dataset,), rounds=1, iterations=1
            )
        else:
            result = MFIBlocks(config).run(dataset)
        qualities[mode] = italy_gold.evaluate(result.candidate_pairs)
        pair_counts[mode] = result.comparisons()

    rows = [
        [mode, qualities[mode].recall, qualities[mode].precision,
         qualities[mode].f1, pair_counts[mode]]
        for mode in ("skip", "threshold")
    ]
    table = format_table(
        ["SN mode", "Recall", "Precision", "F-1", "Pairs"], rows,
        title="Ablation - NG enforcement semantics (MaxMinSup=5, NG=3.5)",
    )
    emit("ablation_ng", table)

    skip, threshold = qualities["skip"], qualities["threshold"]
    # skip mode recovers more matches (it calibrates to Table 9's Base
    # recall)...
    assert skip.recall > threshold.recall
    # ...while threshold mode, pruning whole iteration tails, is the far
    # stricter and more precise variant (it reproduces the interior F-1
    # peak of Figure 15 — see bench_fig15_16_ng_sweep).
    assert threshold.precision > skip.precision
    assert pair_counts["threshold"] < pair_counts["skip"]
