"""Figures 15-16 — F-1, precision, and recall by NG and MaxMinSup.

Sweeps NG over 1.5 .. 5 for MaxMinSup in {4, 5, 6} and reports the
three series of both figures, under *both* sparse-neighborhood
enforcement semantics (see SparseNeighborhoodFilter):

* ``threshold`` (the literal Algorithm 1 minTh reading) reproduces the
  Figure 15 shape — F-1 rises from NG=1.5 to an interior peak around
  NG 2.5-3.5, then falls;
* ``skip`` (calibrated to Table 9's Base precision/recall) yields
  higher recall throughout, so against our complete gold standard its
  F-1 peaks at the left edge.

Both modes reproduce the Figure 16 shape: recall rises with NG while
precision falls, and MaxMinSup=5 with NG in 3..4 keeps recall near its
maximum (the paper's operating point).
"""

from __future__ import annotations

import pytest
from bench_common import emit

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.blocking.scoring import BlockScorer, ScoringMethod
from repro.evaluation import format_series

NG_VALUES = (1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)
MAX_MINSUPS = (4, 5, 6)
MODES = ("threshold", "skip")


@pytest.fixture(scope="module")
def sweep(italy, italy_gold):
    dataset, _persons = italy
    results = {}
    for mode in MODES:
        for max_minsup in MAX_MINSUPS:
            for ng in NG_VALUES:
                config = MFIBlocksConfig(
                    max_minsup=max_minsup, ng=ng, sn_mode=mode,
                    scoring=BlockScorer(method=ScoringMethod.WEIGHTED),
                )
                blocking = MFIBlocks(config).run(dataset)
                results[(mode, max_minsup, ng)] = italy_gold.evaluate(
                    blocking.candidate_pairs
                )
    return results


def test_fig15_f1_by_ng_and_maxminsup(sweep, benchmark, italy):
    dataset, _persons = italy
    series = []
    for mode in MODES:
        for mms in MAX_MINSUPS:
            series.append((
                f"{mode[:4]} MMS {mms}",
                [sweep[(mode, mms, ng)].f1 for ng in NG_VALUES],
            ))
    table = format_series(
        "NG", list(NG_VALUES), series,
        title="Figure 15 analogue - F-1 by NG and MaxMinSup "
              "(threshold = paper-literal SN semantics)",
    )
    emit("fig15_f1_by_ng", table)

    # Paper-literal semantics: F-1 peaks strictly inside the sweep.
    for mms in MAX_MINSUPS:
        f1s = [sweep[("threshold", mms, ng)].f1 for ng in NG_VALUES]
        peak = max(range(len(f1s)), key=f1s.__getitem__)
        assert 0 < peak < len(NG_VALUES) - 1, (mms, f1s)
        assert max(f1s) > 0.15

    # one representative blocking run for timing
    benchmark(
        MFIBlocks(MFIBlocksConfig(max_minsup=5, ng=3.0)).run, dataset
    )


def test_fig16_precision_recall_by_ng(sweep, benchmark, italy, italy_gold):
    dataset, _persons = italy
    # time the quality-evaluation kernel so --benchmark-only runs this test
    blocking = MFIBlocks(MFIBlocksConfig(max_minsup=4, ng=2.0)).run(dataset)
    benchmark(italy_gold.evaluate, blocking.candidate_pairs)

    series = []
    for mode in MODES:
        for mms in MAX_MINSUPS:
            series.append((
                f"{mode[:4]} Recall {mms}",
                [sweep[(mode, mms, ng)].recall for ng in NG_VALUES],
            ))
        for mms in MAX_MINSUPS:
            series.append((
                f"{mode[:4]} Precision {mms}",
                [sweep[(mode, mms, ng)].precision for ng in NG_VALUES],
            ))
    table = format_series(
        "NG", list(NG_VALUES), series,
        title="Figure 16 analogue - precision / recall by NG and MaxMinSup",
    )
    emit("fig16_precision_recall_by_ng", table)

    for mode in MODES:
        for mms in MAX_MINSUPS:
            recalls = [sweep[(mode, mms, ng)].recall for ng in NG_VALUES]
            precisions = [
                sweep[(mode, mms, ng)].precision for ng in NG_VALUES
            ]
            # Recall grows with NG (allowing small non-monotonic wobble).
            assert recalls[-1] > recalls[0]
            assert max(
                recalls[i] - min(recalls[i:]) for i in range(len(recalls))
            ) < 0.1
            # Precision falls with NG.
            assert precisions[-1] < precisions[0]

    # The paper's operating point: MaxMinSup=5, NG in 3..4 keeps recall
    # near its maximum (under the calibrated skip semantics).
    best_recall = max(sweep[("skip", 5, ng)].recall for ng in NG_VALUES)
    operating = max(sweep[("skip", 5, ng)].recall for ng in (3.0, 3.5, 4.0))
    assert operating > best_recall * 0.9
