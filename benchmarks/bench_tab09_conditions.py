"""Table 9 — quality under varying conditions.

Reproduces the experiment grid: Base, Expert Weighting, ExpertSim,
SameSrc, Cls, SameSrc+Cls, each averaged over NG in {3, 3.5, 4} with
MaxMinSup=5 (the paper's protocol). Per the paper, Expert Weighting is
kept on for the later conditions.

Expected shapes:

* Expert Weighting lifts recall over Base;
* SameSrc trades recall for precision;
* Cls sharply lifts precision at a modest recall cost;
* SameSrc+Cls achieves the best F-1.

Absolute precision runs higher than the published numbers because our
synthetic gold standard is *complete*, while the paper's tagged gold
standard famously missed true matches (94 of 100 sampled "false
positives" were real; Section 6.5).
"""

from __future__ import annotations

import pytest
from bench_common import emit

from repro.classify import PairClassifier
from repro.core import PipelineConfig, UncertainERPipeline
from repro.datagen import build_gazetteer
from repro.evaluation import format_table

NG_VALUES = (3.0, 3.5, 4.0)


def _conditions(geo_lookup):
    return [
        ("Base", PipelineConfig(max_minsup=5)),
        ("Expert Weighting", PipelineConfig(max_minsup=5, expert_weighting=True)),
        ("ExpertSim", PipelineConfig(
            max_minsup=5, expert_weighting=True, expert_sim=True,
            geo_lookup=geo_lookup,
        )),
        ("SameSrc", PipelineConfig(
            max_minsup=5, expert_weighting=True, same_source_discard=True,
        )),
        ("Cls", PipelineConfig(
            max_minsup=5, expert_weighting=True, classify=True,
        )),
        ("SameSrc + Cls", PipelineConfig(
            max_minsup=5, expert_weighting=True, same_source_discard=True,
            classify=True,
        )),
    ]


@pytest.fixture(scope="module")
def classifier(italy, italy_labels):
    dataset, _persons = italy
    return PairClassifier(dataset).fit(italy_labels)


def test_tab09_conditions(italy, italy_gold, classifier, benchmark):
    dataset, _persons = italy
    geo_lookup = build_gazetteer(["italy"]).lookup

    measurements = {}

    def run_condition(config):
        qualities = []
        for ng in NG_VALUES:
            resolution = UncertainERPipeline(config.with_ng(ng)).run(
                dataset, classifier=classifier if config.classify else None
            )
            qualities.append(italy_gold.evaluate(resolution.pairs))
        recall = sum(q.recall for q in qualities) / len(qualities)
        precision = sum(q.precision for q in qualities) / len(qualities)
        f1 = sum(q.f1 for q in qualities) / len(qualities)
        return recall, precision, f1

    conditions = _conditions(geo_lookup)
    for name, config in conditions:
        if name == "Base":
            measurements[name] = benchmark.pedantic(
                run_condition, args=(config,), rounds=1, iterations=1
            )
        else:
            measurements[name] = run_condition(config)

    rows = [
        [name, *measurements[name]] for name, _config in conditions
    ]
    table = format_table(
        ["Condition", "Recall", "Precision", "F-1"], rows,
        title=(f"Table 9 analogue - quality under varying conditions "
               f"(avg over NG {NG_VALUES}, MaxMinSup=5, "
               f"{len(dataset)} records)"),
    )
    emit("tab09_conditions", table)

    base = measurements["Base"]
    weighting = measurements["Expert Weighting"]
    same_src = measurements["SameSrc"]
    cls = measurements["Cls"]
    both = measurements["SameSrc + Cls"]

    # Expert weighting lifts recall.
    assert weighting[0] > base[0]
    # SameSrc trades recall for (no worse) precision vs weighting.
    assert same_src[0] < weighting[0]
    assert same_src[1] >= weighting[1] - 0.02
    # Cls sharply lifts precision and F-1.
    assert cls[1] > weighting[1] * 1.5
    assert cls[2] > weighting[2]
    # The combined condition is the best F-1 overall (as in the paper),
    # allowing a tiny tie margin with Cls alone.
    best_f1 = max(m[2] for m in measurements.values())
    assert both[2] >= best_f1 - 0.02
