"""Tables 7-8 — the learned ADT models, printed in the paper's format.

Trains the ADTree on the full tagged Italy pair set (Table 7 analogue)
and on the set with MV-involving pairs removed (Table 8 analogue), and
prints both trees. Expected shape: compact trees using 8-10 of the 48
features, dominated by name-distance features (first/last/father/mother),
birth-year distance, and place distance — the families the published
trees select.
"""

from __future__ import annotations

from bench_common import emit

from repro.classify import ADTreeLearner, render_tree
from repro.classify.training import pair_features
from repro.datagen import simplify_tags
from repro.similarity.features import FEATURE_NAMES

#: Features the published trees lean on; ours should overlap heavily.
PAPER_FEATURE_FAMILIES = (
    "sameFN", "sameFFN", "FNdist", "LNdist", "FFNdist", "MFNdist",
    "MNdist", "SNdist", "B3dist", "DPGeoDist",
)


def _fit(dataset, labeled):
    pairs = sorted(labeled)
    model = ADTreeLearner(n_rounds=10).fit(
        pair_features(dataset, pairs),
        [labeled[pair] for pair in pairs],
    )
    return model


def test_tab07_08_adt_models(italy, italy_tagged, benchmark):
    dataset, _persons = italy
    labeled = simplify_tags(italy_tagged, maybe_as=None)
    mv_records = {
        record.book_id for record in dataset
        if record.source.identifier == "MV"
    }
    without_mv = {
        pair: label for pair, label in labeled.items()
        if not (pair[0] in mv_records or pair[1] in mv_records)
    }

    full_model = benchmark(_fit, dataset, labeled)
    mv_less_model = _fit(dataset, without_mv)

    text = (
        f"Table 7 analogue - ADT model on the full tagged set "
        f"(N={len(labeled)}):\n{render_tree(full_model)}\n\n"
        f"Table 8 analogue - ADT model without MV pairs "
        f"(N={len(without_mv)}):\n{render_tree(mv_less_model)}\n\n"
        f"features used (full):    {', '.join(full_model.features_used())}\n"
        f"features used (MV-less): {', '.join(mv_less_model.features_used())}"
    )
    emit("tab07_08_adt_models", text)

    for model in (full_model, mv_less_model):
        used = model.features_used()
        # Compact: the paper's trees choose 8-10 of the 48 features.
        assert 4 <= len(used) <= 12
        assert set(used) <= set(FEATURE_NAMES)
        # The core of the published trees — name-distance features and
        # birth-year distance — must be represented.
        assert len(set(used) & set(PAPER_FEATURE_FAMILIES)) >= 3
        assert any(f.startswith("B") and f.endswith("dist") for f in used)
