"""Golden-vector fixtures pinning the batch similarity kernels.

The batch kernels in ``repro.similarity.batch`` / ``repro.similarity
.features`` / ``repro.blocking.scoring`` promise *bit-identical* output
to their scalar references. ``tests/test_batch_kernels.py`` checks that
promise against the scalar code as it exists today; this module pins it
against the past as well: a committed corpus of record pairs with their
expected 48-column feature matrix and ranked similarity scores, so a
refactor that drifts either side (batch *or* scalar) by even one ULP
fails ``tests/test_golden_kernels.py`` with a per-feature diff.

Fixtures live in ``tests/fixtures/golden_kernels/``:

* ``features.csv`` — one row per pair: ``a,b`` then the 48 features in
  canonical order, floats serialized with ``repr`` (exact round-trip),
  missing features as empty cells;
* ``ranked_pairs.csv`` — the same pairs ranked by descending weighted
  similarity: ``rank,a,b,uniform,weighted,soft`` covering all three
  :class:`~repro.blocking.scoring.ScoringMethod` kernels.

Regenerate after an *intentional* change of kernel semantics with::

    PYTHONPATH=src python -m tools.golden_kernels --write

and review the fixture diff like any other behavior change.
"""

from __future__ import annotations

import argparse
import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "golden_kernels"
FEATURES_CSV = FIXTURE_DIR / "features.csv"
RANKED_CSV = FIXTURE_DIR / "ranked_pairs.csv"

#: Corpus shape: large enough for every item type and name-noise mode
#: to appear, small enough to keep the fixtures reviewable.
N_PERSONS = 40
SEED = 97
MV_REPORTS = 6
N_PAIRS = 200

#: Strides over the sorted record ids; small strides hit same-person
#: report pairs, large ones hit unrelated records.
_STRIDES = (1, 2, 3, 5, 7, 11, 19, 31)

Pair = Tuple[int, int]


def golden_dataset():
    """The deterministic fixture corpus (seeded generator output)."""
    from repro.datagen.corpus import build_corpus

    dataset, _persons = build_corpus(
        n_persons=N_PERSONS,
        seed=SEED,
        mv_reports=MV_REPORTS,
        name="golden-kernels",
    )
    return dataset


def golden_pairs(dataset, count: int = N_PAIRS) -> List[Pair]:
    """``count`` canonical pairs mixing near and far record ids."""
    rids = sorted(dataset.record_ids)
    pairs: List[Pair] = []
    seen = set()
    for stride in _STRIDES:
        for i in range(len(rids) - stride):
            pair = (rids[i], rids[i + stride])
            if pair in seen:
                continue
            seen.add(pair)
            pairs.append(pair)
            if len(pairs) == count:
                return pairs
    return pairs


def compute_feature_rows(
    dataset, pairs: Sequence[Pair]
) -> List[Dict[str, object]]:
    """The expected feature matrix, via the batch extractor."""
    from repro.similarity.features import extract_features_batch

    return extract_features_batch(dataset, list(pairs))


def compute_ranked_rows(
    dataset, pairs: Sequence[Pair]
) -> List[Tuple[int, int, int, float, float, float]]:
    """(rank, a, b, uniform, weighted, soft) ranked by weighted desc."""
    from repro.blocking.scoring import BlockScorer, ScoringMethod
    from repro.similarity.interning import InternedCorpus

    corpus = InternedCorpus(dataset.item_bags)
    pair_list = list(pairs)
    by_method = {
        method: BlockScorer(method=method).pair_similarity_batch(
            corpus, pair_list
        )
        for method in (
            ScoringMethod.UNIFORM,
            ScoringMethod.WEIGHTED,
            ScoringMethod.EXPERT,
        )
    }
    rows = [
        (
            pair[0],
            pair[1],
            by_method[ScoringMethod.UNIFORM][i],
            by_method[ScoringMethod.WEIGHTED][i],
            by_method[ScoringMethod.EXPERT][i],
        )
        for i, pair in enumerate(pair_list)
    ]
    rows.sort(key=lambda row: (-row[3], row[0], row[1]))
    return [
        (rank, a, b, uniform, weighted, soft)
        for rank, (a, b, uniform, weighted, soft) in enumerate(rows, start=1)
    ]


def format_cell(value) -> str:
    """Exact-round-trip serialization (empty cell for missing).

    Feature values are floats, ``None``, or the trinary agreement
    strings (``yes``/``partial``/``no``); floats use ``repr`` so the
    committed text round-trips bit-exactly.
    """
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    return repr(float(value))


def parse_cell(cell: str):
    """Inverse of :func:`format_cell`."""
    if cell == "":
        return None
    try:
        return float(cell)
    except ValueError:
        return cell


def render_features(
    pairs: Sequence[Pair],
    rows: Sequence[Dict[str, object]],
    names: Sequence[str],
) -> str:
    lines = [",".join(["a", "b", *names])]
    for pair, row in zip(pairs, rows):
        cells = [str(pair[0]), str(pair[1])]
        cells.extend(format_cell(row[name]) for name in names)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def render_ranked(
    ranked: Sequence[Tuple[int, int, int, float, float, float]]
) -> str:
    lines = [",".join(["rank", "a", "b", "uniform", "weighted", "soft"])]
    for rank, a, b, uniform, weighted, soft in ranked:
        lines.append(
            ",".join(
                [
                    str(rank),
                    str(a),
                    str(b),
                    format_cell(uniform),
                    format_cell(weighted),
                    format_cell(soft),
                ]
            )
        )
    return "\n".join(lines) + "\n"


def load_features_csv(
    path: Path = FEATURES_CSV,
) -> Tuple[List[str], List[Pair], List[Dict[str, object]]]:
    """(feature names, pairs, rows) from the committed fixture."""
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        names = header[2:]
        pairs: List[Pair] = []
        rows: List[Dict[str, object]] = []
        for record in reader:
            pairs.append((int(record[0]), int(record[1])))
            rows.append(
                {
                    name: parse_cell(cell)
                    for name, cell in zip(names, record[2:])
                }
            )
    return names, pairs, rows


def load_ranked_csv(
    path: Path = RANKED_CSV,
) -> List[Tuple[int, int, int, float, float, float]]:
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        next(reader)
        return [
            (
                int(rank),
                int(a),
                int(b),
                float(uniform),
                float(weighted),
                float(soft),
            )
            for rank, a, b, uniform, weighted, soft in reader
        ]


def regenerate(root: Path = FIXTURE_DIR) -> Tuple[Path, Path]:
    """Write both fixture files; returns their paths."""
    from repro.similarity.features import FEATURE_NAMES

    dataset = golden_dataset()
    pairs = golden_pairs(dataset)
    rows = compute_feature_rows(dataset, pairs)
    ranked = compute_ranked_rows(dataset, pairs)
    root.mkdir(parents=True, exist_ok=True)
    features_path = root / FEATURES_CSV.name
    ranked_path = root / RANKED_CSV.name
    features_path.write_text(
        render_features(pairs, rows, FEATURE_NAMES), encoding="utf-8"
    )
    ranked_path.write_text(render_ranked(ranked), encoding="utf-8")
    return features_path, ranked_path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate the committed fixtures in place",
    )
    args = parser.parse_args(argv)
    if not args.write:
        parser.error("pass --write to regenerate the fixtures")
    for path in regenerate():
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
