"""Per-line suppression comments.

Syntax (mirrors pylint's, with our own tag)::

    risky_call()  # reprolint: disable=RL001
    other()       # reprolint: disable=RL001,RL003 -- exact-zero guard
    anything()    # reprolint: disable

A bare ``disable`` silences every rule on that line. Text after ``--``
is a free-form justification; the linter does not parse it but the code
review policy (docs/STATIC_ANALYSIS.md) requires one.

Comments are found with :mod:`tokenize`, so ``#`` characters inside
string literals never register as suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

__all__ = ["Suppressions", "collect_suppressions"]

_ALL = frozenset({"*"})
_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable(?:=(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE
)


class Suppressions:
    """Maps physical line numbers to the rule codes silenced there."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]]) -> None:
        self._by_line = by_line

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self._by_line.get(line)
        if not codes:
            return False
        return codes is _ALL or "*" in codes or code.upper() in codes

    def __len__(self) -> int:
        return len(self._by_line)


def collect_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for suppression comments, tolerant of bad syntax."""
    by_line: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            codes = _parse_comment(token.string)
            if codes is not None:
                by_line[token.start[0]] = codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file that fails to tokenize will fail to parse too; the
        # engine reports that as its own finding.
        pass
    return Suppressions(by_line)


def _parse_comment(comment: str) -> "FrozenSet[str] | None":
    match = _PATTERN.search(comment)
    if match is None:
        return None
    raw = match.group("codes")
    if raw is None:
        return _ALL
    # Cut an inline justification ("... -- reason") if the codes group
    # accidentally swallowed part of it (it cannot: the pattern stops at
    # the first non-code character), then split on commas.
    codes = frozenset(
        code.strip().upper() for code in raw.split(",") if code.strip()
    )
    return codes or _ALL
