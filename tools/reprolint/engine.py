"""Lint driver: file discovery, parsing, rule dispatch, suppression.

Three entry points, layered so tests can exercise any level:

* :func:`lint_source` — lint one source string (no filesystem);
* :func:`lint_file` — read + lint one file;
* :func:`lint_paths` — walk directories, lint every ``.py`` file.

All outputs are sorted (path, line, col, rule) — the linter holds
itself to its own RL002 standard.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Type

from tools.reprolint.config import Config
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.rules import ALL_RULES, Rule
from tools.reprolint.rules.base import RuleContext
from tools.reprolint.suppressions import collect_suppressions

__all__ = ["lint_source", "lint_file", "lint_paths"]


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[Config] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns sorted findings."""
    config = config or Config()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                rule="RL000",
                message=f"file does not parse: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    suppressions = collect_suppressions(source)
    context = RuleContext(path=path, source=source, tree=tree, config=config)
    findings: List[Finding] = []
    for rule_cls in rules if rules is not None else ALL_RULES:
        if not config.rule_enabled(rule_cls.code, path):
            continue
        for finding in rule_cls().check(context):
            if suppressions.is_suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_file(
    path: Path,
    config: Optional[Config] = None,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one file; paths in findings are reported relative to root."""
    relative = _relative_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=relative,
                line=1,
                col=1,
                rule="RL000",
                message=f"file is unreadable: {exc}",
                severity=Severity.ERROR,
            )
        ]
    return lint_source(source, path=relative, config=config, rules=rules)


def lint_paths(
    paths: Iterable[Path],
    config: Optional[Config] = None,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint every Python file under the given files/directories."""
    config = config or Config()
    root = root or Path.cwd()
    findings: List[Finding] = []
    for file_path in _discover(paths, config, root):
        findings.extend(
            lint_file(file_path, config=config, root=root, rules=rules)
        )
    return sorted(findings)


def _discover(
    paths: Iterable[Path], config: Config, root: Path
) -> List[Path]:
    seen = set()
    ordered: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            relative = _relative_path(candidate, root)
            if config.is_excluded(relative):
                continue
            if relative not in seen:
                seen.add(relative)
                ordered.append(candidate)
    return ordered


def _relative_path(path: Path, root: Optional[Path]) -> str:
    root = root or Path.cwd()
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = path
    return str(relative).replace("\\", "/")
