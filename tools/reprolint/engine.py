"""Lint driver: file discovery, parsing, rule dispatch, suppression.

Three entry points, layered so tests can exercise any level:

* :func:`lint_source` — lint one source string (no filesystem);
* :func:`lint_file` — read + lint one file;
* :func:`lint_paths` — walk directories, lint every ``.py`` file.

All outputs are sorted (path, line, col, rule) — the linter holds
itself to its own RL002 standard.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Type

from tools.reprolint.callgraph import build_call_graph
from tools.reprolint.config import Config
from tools.reprolint.contracts import check_contracts
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.parallel_safety import check_parallel_safety
from tools.reprolint.perf_lint import (
    DEFAULT_MIN_HOT_FRACTION,
    PerfFinding,
    check_perf,
)
from tools.reprolint.profile_join import SpanProfile
from tools.reprolint.rules import ALL_RULES, Rule
from tools.reprolint.rules.base import RuleContext
from tools.reprolint.suppressions import collect_suppressions

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "analyze_contract_sources",
    "analyze_contract_paths",
    "analyze_parallel_sources",
    "analyze_parallel_paths",
    "analyze_perf_sources",
    "analyze_perf_paths",
]


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[Config] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns sorted findings."""
    config = config or Config()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                rule="RL000",
                message=f"file does not parse: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    suppressions = collect_suppressions(source)
    context = RuleContext(path=path, source=source, tree=tree, config=config)
    findings: List[Finding] = []
    for rule_cls in rules if rules is not None else ALL_RULES:
        if not config.rule_enabled(rule_cls.code, path):
            continue
        for finding in rule_cls().check(context):
            if suppressions.is_suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_file(
    path: Path,
    config: Optional[Config] = None,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one file; paths in findings are reported relative to root."""
    relative = _relative_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=relative,
                line=1,
                col=1,
                rule="RL000",
                message=f"file is unreadable: {exc}",
                severity=Severity.ERROR,
            )
        ]
    return lint_source(source, path=relative, config=config, rules=rules)


def lint_paths(
    paths: Iterable[Path],
    config: Optional[Config] = None,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint every Python file under the given files/directories."""
    config = config or Config()
    root = root or Path.cwd()
    findings: List[Finding] = []
    for file_path in _discover(paths, config, root):
        findings.extend(
            lint_file(file_path, config=config, root=root, rules=rules)
        )
    return sorted(findings)


def analyze_contract_sources(
    sources: Sequence[tuple],
    config: Optional[Config] = None,
) -> List[Finding]:
    """Run the inter-procedural contract pass over (path, source) pairs.

    Unlike :func:`lint_source`, this needs *all* modules at once: taint
    flows through the call graph, so the unit of analysis is the whole
    file set, not one file. Per-line ``# reprolint: disable=RL10x``
    suppressions and config select/ignore/per-path-ignores still apply.
    """
    return _analyze_graph_sources(sources, check_contracts, config)


def analyze_contract_paths(
    paths: Iterable[Path],
    config: Optional[Config] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Contract pass over every Python file under files/directories."""
    return analyze_contract_sources(
        _read_sources(paths, config, root), config=config
    )


def analyze_parallel_sources(
    sources: Sequence[tuple],
    config: Optional[Config] = None,
) -> List[Finding]:
    """Run the parallel-safety pass (RL200-RL205) over (path, source)
    pairs. Same whole-file-set unit of analysis as the contract pass;
    suppressions and config select/ignore/per-path-ignores apply."""
    return _analyze_graph_sources(sources, check_parallel_safety, config)


def analyze_parallel_paths(
    paths: Iterable[Path],
    config: Optional[Config] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Parallel-safety pass over every Python file under the paths."""
    return analyze_parallel_sources(
        _read_sources(paths, config, root), config=config
    )


def analyze_perf_sources(
    sources: Sequence[tuple],
    config: Optional[Config] = None,
    profile: Optional[SpanProfile] = None,
    min_hot_fraction: float = DEFAULT_MIN_HOT_FRACTION,
) -> List[PerfFinding]:
    """Run the performance pass (RL300-RL305) over (path, source) pairs.

    Returns :class:`PerfFinding` (finding + share + hot flag) rather
    than bare findings: callers need the ranking annotations for the
    baseline inventory and the ranked human output. Suppressions and
    config select/ignore/per-path-ignores apply as in the other passes.
    """
    config = config or Config()
    graph = build_call_graph(list(sources))
    suppressions = {
        path: collect_suppressions(text) for path, text in sources
    }
    out: List[PerfFinding] = []
    for pf in check_perf(
        graph, profile=profile, min_hot_fraction=min_hot_fraction
    ):
        if not config.rule_enabled(pf.finding.rule, pf.finding.path):
            continue
        suppressed = suppressions.get(pf.finding.path)
        if suppressed is not None and suppressed.is_suppressed(
            pf.finding.line, pf.finding.rule
        ):
            continue
        out.append(pf)
    return out


def analyze_perf_paths(
    paths: Iterable[Path],
    config: Optional[Config] = None,
    root: Optional[Path] = None,
    profile: Optional[SpanProfile] = None,
    min_hot_fraction: float = DEFAULT_MIN_HOT_FRACTION,
) -> List[PerfFinding]:
    """Performance pass over every Python file under the paths."""
    return analyze_perf_sources(
        _read_sources(paths, config, root),
        config=config,
        profile=profile,
        min_hot_fraction=min_hot_fraction,
    )


def _analyze_graph_sources(
    sources: Sequence[tuple],
    checker,
    config: Optional[Config] = None,
) -> List[Finding]:
    """Shared driver for the call-graph passes (contracts, parallel)."""
    config = config or Config()
    graph = build_call_graph(list(sources))
    suppressions = {
        path: collect_suppressions(text) for path, text in sources
    }
    findings: List[Finding] = []
    for finding in checker(graph):
        if not config.rule_enabled(finding.rule, finding.path):
            continue
        suppressed = suppressions.get(finding.path)
        if suppressed is not None and suppressed.is_suppressed(
            finding.line, finding.rule
        ):
            continue
        findings.append(finding)
    return sorted(findings)


def _read_sources(
    paths: Iterable[Path],
    config: Optional[Config],
    root: Optional[Path],
) -> List[tuple]:
    config = config or Config()
    root = root or Path.cwd()
    sources: List[tuple] = []
    for file_path in _discover(paths, config, root):
        try:
            text = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue  # lint_paths already reports unreadable files (RL000)
        sources.append((_relative_path(file_path, root), text))
    return sources


def _discover(
    paths: Iterable[Path], config: Config, root: Path
) -> List[Path]:
    seen = set()
    ordered: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            relative = _relative_path(candidate, root)
            if config.is_excluded(relative):
                continue
            if relative not in seen:
                seen.add(relative)
                ordered.append(candidate)
    return ordered


def _relative_path(path: Path, root: Optional[Path]) -> str:
    root = root or Path.cwd()
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = path
    return str(relative).replace("\\", "/")
