"""Finding and severity types shared by the engine, rules, and CLI."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """How a finding is treated by the exit-code gate."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Orderable so reports are stable: path, then line, then column, then
    rule code — never dict/set iteration order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (schema version 1)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": str(self.severity),
        }

    def format_human(self) -> str:
        """``path:line:col: RLxxx message`` — the classic compiler shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
