"""Inter-procedural parallel-safety checking: rules RL200-RL205.

The parallel layer (``src/repro/parallel``, ``docs/PARALLELISM.md``)
keeps ``--workers N`` byte-identical to ``--workers 1`` through four
conventions: module-level picklable work functions, shared-nothing
workers, order-independent merges, and schedule identity kept out of
fingerprints. This pass turns those conventions into checked rules,
walking the same call graph as the RL100-RL103 contract pass:

| Code  | Name                        | Fires when |
|-------|-----------------------------|------------|
| RL200 | work-captures-state         | a function submitted to an executor is a lambda, nested function, or bound method, or directly reads a mutable / non-picklable module global |
| RL201 | worker-global-mutation      | code reachable from a work function mutates module-global (or closure-captured) state — the write is lost across the process boundary, or races in-process |
| RL202 | merge-not-order-independent | ``map_chunks`` chunk results are consumed without flowing through an ``@commutative_merge`` function (or an order-insensitive builtin) |
| RL203 | fork-unsafe-resource        | a fork-unsafe module global (open handle, live RNG, tracer/sink, connection, lock) is reachable from a work function |
| RL204 | shared-memory-ownership     | a ``multiprocessing.shared_memory.SharedMemory`` buffer is created without paired ``close()``/``unlink()`` in its owning scope |
| RL205 | schedule-in-fingerprint     | worker count or executor identity flows into ``PipelineConfig``, a ``*Config.to_echo`` echo, or a ``*fingerprint*`` call — output would differ across worker counts and resume would break |

*Work roots* are found two ways: call sites whose attribute name is
``map_chunks`` or ``submit`` (the first positional argument is the work
expression, resolved through bare names, aliases, re-exports, and
``functools.partial``), and any function carrying ``@picklable_work``.
``@fork_safe`` adds an RL203 root; ``@shared_readonly`` adds an RL201
root while exempting the function's *reads* of mutable globals from
RL200 (the declaration says the state is reviewed as effectively
immutable — writes anywhere in worker-reachable code still fire).

Like the contract pass, traversal is compositional: it stops at callees
that carry any contract (each is verified as its own root, or trusted
as declared), and unresolved calls contribute nothing — the deliberate
under-approximation documented in :mod:`tools.reprolint.callgraph`.
Two more documented under-approximations: RL202 skips ``return
executor.map_chunks(...)`` (the caller owns the merge), and RL204 skips
buffers that are directly returned (ownership transfers out).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    _local_instance_types,
    _own_calls,
    _partial_target,
    _resolve_callable_expr,
    dotted_name,
)
from tools.reprolint.contracts import PERF_KINDS, _finding, contracts_for
from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import attach_parents

__all__ = ["PARALLEL_RULES", "check_parallel_safety"]

#: Rule catalogue entries for the parallel-safety pass (code -> name).
PARALLEL_RULES: Dict[str, str] = {
    "RL200": "work-captures-state",
    "RL201": "worker-global-mutation",
    "RL202": "merge-not-order-independent",
    "RL203": "fork-unsafe-resource",
    "RL204": "shared-memory-ownership",
    "RL205": "schedule-in-fingerprint",
}

#: Executor dispatch methods whose first positional argument is a work
#: function shipped to (potential) worker processes.
_SUBMIT_METHODS = frozenset({"map_chunks", "submit"})

#: Module-level constructors whose result is mutable shared state.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.deque",
        "collections.Counter", "collections.OrderedDict",
    }
)

#: Module-level constructors whose result cannot cross a pickle
#: boundary (locks and friends also deadlock under fork).
_NONPICKLABLE_CONSTRUCTORS = frozenset(
    {
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Event", "threading.Semaphore",
        "threading.BoundedSemaphore", "_thread.allocate_lock",
    }
)

#: Module-level constructors whose result is a fork-unsafe resource:
#: file handles (duplicated offsets), live RNGs (identical child
#: streams), sockets/connections (shared descriptors).
_RESOURCE_CONSTRUCTORS = frozenset(
    {
        "open", "io.open", "gzip.open", "bz2.open", "lzma.open",
        "sqlite3.connect", "socket.socket", "socket.create_connection",
        "tempfile.TemporaryFile", "tempfile.NamedTemporaryFile",
        "random.Random", "random.SystemRandom",
        "numpy.random.default_rng",
    }
)

#: Repo-specific resource classes by (final) name: a tracer or sink
#: held at module level would be inherited by every forked worker.
_RESOURCE_CLASS_NAMES = frozenset({"Tracer", "JsonlSink"})

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort",
        "reverse", "appendleft", "write",
    }
)

#: Builtins whose result does not depend on input ordering (safe
#: consumers of chunk-result lists).
_ORDER_INSENSITIVE_BUILTINS = frozenset(
    {"sorted", "set", "frozenset", "len", "min", "max", "any", "all"}
)

#: Keyword names that smuggle schedule identity into a config/sink.
_SCHEDULE_KEYWORDS = frozenset(
    {"workers", "n_workers", "num_workers", "chunk_size", "executor"}
)

#: Attribute reads that denote schedule identity inside a sink.
_SCHEDULE_ATTRS = frozenset({"workers", "chunk_size", "executor"})

#: Call names (bare or attribute) that produce schedule identity.
_SCHEDULE_CALLS = frozenset({"make_executor", "cpu_count"})

_SHARED_MEMORY_DOTTED = "multiprocessing.shared_memory.SharedMemory"


def check_parallel_safety(graph: CallGraph) -> List[Finding]:
    """Run RL200-RL205 over the graph; sorted, de-duplicated findings."""
    return _ParallelChecker(graph).run()


# -- AST helpers ---------------------------------------------------------------


def _own_nodes(func_node: ast.AST) -> Iterator[ast.AST]:
    """Every node in a function body, excluding nested def/class bodies.

    Nested definitions are their own graph nodes (reached through the
    conservative parent edge), so their bodies are analyzed separately.
    Lambda bodies stay included, mirroring ``_own_calls``.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _bound_names(func_node: ast.AST) -> Set[str]:
    """Names bound locally in the function's own body (args included).

    Names declared ``global`` are *removed*: a store through a
    ``global`` declaration binds at module scope, not locally.
    """
    args = func_node.args  # type: ignore[attr-defined]
    bound: Set[str] = {
        a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    }
    for vararg in (args.vararg, args.kwarg):
        if vararg is not None:
            bound.add(vararg.arg)
    global_decls: Set[str] = set()
    for node in _own_nodes(func_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Global):
            global_decls.update(node.names)
    # Nested defs/lambdas bind their name in this scope.
    for child in ast.walk(func_node):  # type: ignore[arg-type]
        if child is func_node:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(child.name)
    return bound - global_decls


def _chain_root(node: ast.AST) -> Optional[ast.Name]:
    """The root ``Name`` of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    """The final name of a call target (``f`` or ``obj.f``)."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _local_binding(func_node: ast.AST, name: str) -> Optional[ast.expr]:
    """The value last assigned to local ``name`` via a plain assignment."""
    value: Optional[ast.expr] = None
    for node in _own_nodes(func_node):
        if not isinstance(node, ast.Assign):
            continue
        if any(
            isinstance(target, ast.Name) and target.id == name
            for target in node.targets
        ):
            value = node.value
    return value


# -- the checker ---------------------------------------------------------------


class _ParallelChecker:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: function qualname -> set of contract kinds declared on it
        self.contracts: Dict[str, Set[str]] = {}
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            module = graph.modules[info.module]
            declared = contracts_for(module, info.node)
            if declared:
                self.contracts[qualname] = {c.kind for c in declared}
        #: module name -> global name -> ("mutable"|"nonpicklable"|"resource")
        self._globals: Dict[str, Dict[str, str]] = {}
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[str, int, int, str, str]] = set()

    def run(self) -> List[Finding]:
        work_roots = self._discover_work_roots()
        for qualname, kinds in sorted(self.contracts.items()):
            if "picklable_work" in kinds:
                work_roots.add(qualname)
        mutation_roots = set(work_roots)
        resource_roots = set(work_roots)
        for qualname, kinds in sorted(self.contracts.items()):
            if "shared_readonly" in kinds:
                mutation_roots.add(qualname)
            if "fork_safe" in kinds:
                resource_roots.add(qualname)

        for qualname in sorted(work_roots):
            self._check_capture(self.graph.functions[qualname])
        for qualname in sorted(mutation_roots | resource_roots):
            self._check_worker_reachable(
                self.graph.functions[qualname],
                check_mutations=qualname in mutation_roots,
                check_resources=qualname in resource_roots,
            )

        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            module = self.graph.modules[info.module]
            self._check_merges(info, module)
            self._check_shared_memory(info, module)
            self._check_schedule_sinks(info, module)
        return sorted(self.findings)

    def _emit(
        self, info: FunctionInfo, node: ast.AST, rule: str, message: str
    ) -> None:
        finding = _finding(info, node, rule, message)
        key = (finding.path, finding.line, finding.col, rule, message)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(finding)

    # -- work-root discovery --------------------------------------------------

    def _discover_work_roots(self) -> Set[str]:
        """Executor submission sites: RL200 on unshippable work
        expressions, otherwise the resolved function becomes a root."""
        roots: Set[str] = set()
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            module = self.graph.modules[info.module]
            local_types = _local_instance_types(self.graph, module, info)
            for call in _own_calls(info.node):
                if not (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in _SUBMIT_METHODS
                ):
                    continue
                if not call.args:
                    continue
                resolved = self._resolve_work_expr(
                    info, module, local_types, call.args[0]
                )
                if resolved is None:
                    continue
                roots.update(resolved)
        return roots

    def _resolve_work_expr(
        self,
        info: FunctionInfo,
        module: ModuleInfo,
        local_types: Dict[str, str],
        expr: ast.expr,
        _chased: Optional[Set[str]] = None,
    ) -> Optional[Set[str]]:
        if isinstance(expr, ast.Lambda):
            self._emit(
                info,
                expr,
                "RL200",
                "lambda submitted as executor work; lambdas are not "
                "picklable — define a module-level @picklable_work "
                "function instead",
            )
            return None
        if isinstance(expr, ast.Call):
            # functools.partial(f, ...): pickles iff f does.
            target = _partial_target(module, expr)
            if target is not None:
                return self._resolve_work_expr(
                    info, module, local_types, target, _chased
                )
            return None  # factory call: unresolvable, contributes nothing
        if isinstance(expr, ast.Name):
            nested = f"{info.qualname}.{expr.id}"
            if nested in self.graph.functions:
                self._emit(
                    info,
                    expr,
                    "RL200",
                    f"nested function `{expr.id}` submitted as executor "
                    "work is not picklable; hoist it to module level "
                    "(@picklable_work)",
                )
                return None
        qualname = _resolve_callable_expr(
            self.graph, module, info, expr, local_types
        )
        if qualname is None:
            if isinstance(expr, ast.Name):
                # Chase one level of local aliasing: `bound =
                # functools.partial(work, cfg)` then `submit(bound, ...)`.
                chased = _chased if _chased is not None else set()
                if expr.id not in chased:
                    chased.add(expr.id)
                    value = _local_binding(info.node, expr.id)
                    if value is not None:
                        return self._resolve_work_expr(
                            info, module, local_types, value, chased
                        )
            return None
        target_info = self.graph.functions.get(qualname)
        if target_info is None:
            return None
        if target_info.class_name is not None:
            self._emit(
                info,
                expr,
                "RL200",
                f"method `{target_info.name}` submitted as executor work "
                "captures its instance; work functions must be "
                "module-level (@picklable_work)",
            )
            return None
        if "." in target_info.name:
            self._emit(
                info,
                expr,
                "RL200",
                f"nested function `{target_info.name}` submitted as "
                "executor work is not picklable; hoist it to module "
                "level (@picklable_work)",
            )
            return None
        return {qualname}

    # -- module-global classification ----------------------------------------

    def _module_globals(self, module: ModuleInfo) -> Dict[str, str]:
        cached = self._globals.get(module.name)
        if cached is not None:
            return cached
        table: Dict[str, str] = {}
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            kind = self._classify_global_value(module, value)
            if kind is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    table[target.id] = kind
        self._globals[module.name] = table
        return table

    def _classify_global_value(
        self, module: ModuleInfo, value: ast.expr
    ) -> Optional[str]:
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return "mutable"
        if isinstance(value, (ast.Lambda, ast.GeneratorExp)):
            return "nonpicklable"
        if isinstance(value, ast.Call):
            dotted = dotted_name(module.aliases, value.func)
            if dotted is None and isinstance(value.func, ast.Name):
                dotted = value.func.id  # builtins: open, list, dict, ...
            if dotted is None:
                return None
            if dotted in _MUTABLE_CONSTRUCTORS:
                return "mutable"
            if dotted in _NONPICKLABLE_CONSTRUCTORS:
                return "nonpicklable"
            if dotted in _RESOURCE_CONSTRUCTORS:
                return "resource"
            if dotted.rpartition(".")[2] in _RESOURCE_CLASS_NAMES:
                return "resource"
        return None

    def _lookup_global(
        self, module: ModuleInfo, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[Tuple[str, str]]:
        """``(kind, owner-module)`` for a (possibly imported) global."""
        seen = _seen if _seen is not None else set()
        key = f"{module.name}:{name}"
        if key in seen:
            return None
        seen.add(key)
        kind = self._module_globals(module).get(name)
        if kind is not None:
            return (kind, module.name)
        dotted = module.aliases.get(name)
        if dotted is None:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            owner = self.graph.modules.get(".".join(parts[:cut]))
            if owner is None:
                continue
            remainder = parts[cut:]
            if len(remainder) == 1:
                return self._lookup_global(owner, remainder[0], seen)
            return None
        return None

    # -- RL200: capture at the pickle boundary --------------------------------

    def _check_capture(self, info: FunctionInfo) -> None:
        module = self.graph.modules[info.module]
        kinds = self.contracts.get(info.qualname, set())
        exempt_mutable = "shared_readonly" in kinds
        bound = _bound_names(info.node)
        reported: Set[str] = set()
        for node in _own_nodes(info.node):
            if not (
                isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
            ):
                continue
            if node.id in bound or node.id in reported:
                continue
            entry = self._lookup_global(module, node.id)
            if entry is None:
                continue
            kind, owner = entry
            if kind == "mutable" and not exempt_mutable:
                reported.add(node.id)
                self._emit(
                    info,
                    node,
                    "RL200",
                    f"work function `{info.name}` reads mutable module "
                    f"global `{node.id}` (defined in {owner}); workers "
                    "see a divergent copy — pass it through the payload, "
                    "or declare the function @shared_readonly after "
                    "review",
                )
            elif kind == "nonpicklable":
                reported.add(node.id)
                self._emit(
                    info,
                    node,
                    "RL200",
                    f"work function `{info.name}` captures non-picklable "
                    f"module global `{node.id}` (defined in {owner}); it "
                    "cannot cross the process boundary",
                )

    # -- RL201 / RL203: worker-reachable hazards ------------------------------

    def _check_worker_reachable(
        self,
        root: FunctionInfo,
        check_mutations: bool,
        check_resources: bool,
    ) -> None:
        self._scan_function(root, root, check_mutations, check_resources)
        visited: Set[str] = {root.qualname}
        queue: List[str] = [root.qualname]
        while queue:
            current = queue.pop(0)
            for callee, _site in self.graph.callees(current):
                if callee in visited:
                    continue
                visited.add(callee)
                if self.contracts.get(callee, set()) - set(PERF_KINDS):
                    # A contract boundary: verified as its own root (or
                    # trusted as declared). Compositional, like RL100.
                    # Perf markers (@hot_path/@batch_kernel) are cost
                    # annotations, not safety claims — they never stop
                    # the traversal.
                    continue
                callee_info = self.graph.functions.get(callee)
                if callee_info is None:
                    continue
                self._scan_function(
                    root, callee_info, check_mutations, check_resources
                )
                queue.append(callee)

    def _scan_function(
        self,
        root: FunctionInfo,
        info: FunctionInfo,
        check_mutations: bool,
        check_resources: bool,
    ) -> None:
        module = self.graph.modules[info.module]
        transitive = info.qualname != root.qualname
        if check_mutations:
            for node, name, verb in self._mutation_sites(info, module):
                if transitive:
                    message = (
                        f"`{root.name}` transitively reaches "
                        f"`{info.qualname}` ({info.path}:"
                        f"{getattr(node, 'lineno', '?')}), which {verb} "
                        f"`{name}` — the write is lost across the "
                        "process boundary (or races in-process)"
                    )
                    site: ast.AST = root.node
                    owner = root
                else:
                    message = (
                        f"`{info.name}` {verb} `{name}` in worker-"
                        "reachable code; the write is lost across the "
                        "process boundary (or races in-process) — "
                        "return results through the chunk payload "
                        "instead"
                    )
                    site = node
                    owner = info
                self._emit(owner, site, "RL201", message)
        if check_resources:
            for node, name, owner_module in self._resource_reads(info, module):
                if transitive:
                    message = (
                        f"`{root.name}` transitively reaches "
                        f"`{info.qualname}` ({info.path}:"
                        f"{getattr(node, 'lineno', '?')}), which uses "
                        f"fork-unsafe module global `{name}` "
                        f"(defined in {owner_module})"
                    )
                    site = root.node
                    owner = root
                else:
                    message = (
                        f"`{info.name}` uses fork-unsafe module global "
                        f"`{name}` (defined in {owner_module}) in "
                        "worker-reachable code; open handles, live RNGs, "
                        "tracers, and connections must not be inherited "
                        "by workers — construct them per-chunk or pass "
                        "state through the payload"
                    )
                    site = node
                    owner = info
                self._emit(owner, site, "RL203", message)

    def _mutation_sites(
        self, info: FunctionInfo, module: ModuleInfo
    ) -> List[Tuple[ast.AST, str, str]]:
        node = info.node
        bound = _bound_names(node)
        global_decls: Set[str] = set()
        nonlocal_decls: Set[str] = set()
        for child in _own_nodes(node):
            if isinstance(child, ast.Global):
                global_decls.update(child.names)
            elif isinstance(child, ast.Nonlocal):
                nonlocal_decls.update(child.names)
        out: List[Tuple[ast.AST, str, str]] = []
        for child in _own_nodes(node):
            targets: List[ast.expr] = []
            if isinstance(child, ast.Assign):
                targets = child.targets
            elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                targets = [child.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in global_decls:
                        out.append(
                            (child, target.id, "rebinds module-global")
                        )
                    elif target.id in nonlocal_decls:
                        out.append(
                            (child, target.id, "rebinds closure-captured")
                        )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    root_name = _chain_root(target)
                    if (
                        root_name is not None
                        and root_name.id not in bound
                        and self._lookup_global(module, root_name.id)
                        is not None
                    ):
                        out.append(
                            (child, root_name.id, "writes into module-global")
                        )
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _MUTATOR_METHODS
            ):
                root_name = _chain_root(child.func.value)
                if (
                    root_name is not None
                    and root_name.id not in bound
                    and self._lookup_global(module, root_name.id) is not None
                ):
                    out.append(
                        (
                            child,
                            root_name.id,
                            f"calls mutating `.{child.func.attr}()` on "
                            "module-global",
                        )
                    )
        out.sort(key=lambda site: getattr(site[0], "lineno", 0))
        return out

    def _resource_reads(
        self, info: FunctionInfo, module: ModuleInfo
    ) -> List[Tuple[ast.AST, str, str]]:
        bound = _bound_names(info.node)
        reported: Set[str] = set()
        out: List[Tuple[ast.AST, str, str]] = []
        for node in _own_nodes(info.node):
            if not (
                isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
            ):
                continue
            if node.id in bound or node.id in reported:
                continue
            entry = self._lookup_global(module, node.id)
            if entry is None or entry[0] != "resource":
                continue
            reported.add(node.id)
            out.append((node, node.id, entry[1]))
        out.sort(key=lambda site: getattr(site[0], "lineno", 0))
        return out

    # -- RL202: merge discipline ----------------------------------------------

    def _check_merges(self, info: FunctionInfo, module: ModuleInfo) -> None:
        sites = [
            call
            for call in _own_calls(info.node)
            if isinstance(call.func, ast.Attribute)
            and call.func.attr == "map_chunks"
        ]
        if not sites:
            return
        local_types = _local_instance_types(self.graph, module, info)
        parents = attach_parents(module.tree)
        for call in sites:
            parent = parents.get(call)
            if isinstance(parent, ast.Expr):
                continue  # results discarded: nothing order-dependent
            if isinstance(parent, ast.Return):
                continue  # documented: the caller owns the merge
            if isinstance(parent, ast.Call):
                if self._is_sanctioned_call(info, module, local_types, parent):
                    continue
                self._emit_merge_finding(info, call, "inline consumption")
                continue
            if (
                isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)
            ):
                name = parent.targets[0].id
                if self._has_sanctioned_consumer(
                    info, module, local_types, name
                ):
                    continue
                self._emit_merge_finding(info, call, f"`{name}`")
                continue
            self._emit_merge_finding(info, call, "the result")

    def _emit_merge_finding(
        self, info: FunctionInfo, call: ast.Call, what: str
    ) -> None:
        self._emit(
            info,
            call,
            "RL202",
            f"chunk results ({what}) from `map_chunks` in `{info.name}` "
            "are not reduced through an @commutative_merge function; the "
            "chunk plan varies with worker count, so an order-dependent "
            "reduction breaks cross-worker-count byte identity",
        )

    def _is_sanctioned_call(
        self,
        info: FunctionInfo,
        module: ModuleInfo,
        local_types: Dict[str, str],
        call: ast.Call,
    ) -> bool:
        name = _call_name(call)
        if (
            isinstance(call.func, ast.Name)
            and name in _ORDER_INSENSITIVE_BUILTINS
        ):
            return True
        qualname = _resolve_callable_expr(
            self.graph, module, info, call.func, local_types
        )
        if qualname is None:
            return False
        return "commutative_merge" in self.contracts.get(qualname, set())

    def _has_sanctioned_consumer(
        self,
        info: FunctionInfo,
        module: ModuleInfo,
        local_types: Dict[str, str],
        name: str,
    ) -> bool:
        def mentions(expr: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(expr)
            )

        for node in _own_nodes(info.node):
            if isinstance(node, ast.Call):
                values = [*node.args, *[k.value for k in node.keywords]]
                if any(mentions(value) for value in values):
                    if self._is_sanctioned_call(
                        info, module, local_types, node
                    ):
                        return True
            elif isinstance(node, ast.For):
                if not (
                    isinstance(node.iter, ast.Name) and node.iter.id == name
                ):
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call) and self._is_sanctioned_call(
                        info, module, local_types, sub
                    ):
                        return True
        return False

    # -- RL204: shared-memory ownership ---------------------------------------

    def _check_shared_memory(
        self, info: FunctionInfo, module: ModuleInfo
    ) -> None:
        creations = [
            call
            for call in _own_calls(info.node)
            if dotted_name(module.aliases, call.func) == _SHARED_MEMORY_DOTTED
        ]
        if not creations:
            return
        parents = attach_parents(module.tree)
        for call in creations:
            parent = parents.get(call)
            if isinstance(parent, ast.Return):
                continue  # ownership transfers to the caller
            if (
                isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)
            ):
                name = parent.targets[0].id
                missing = self._missing_teardown(info.node, name)
                if missing:
                    self._emit(
                        info,
                        call,
                        "RL204",
                        f"shared_memory buffer `{name}` created in "
                        f"`{info.name}` without paired teardown; missing "
                        f"{' and '.join(missing)} — an unreleased "
                        "segment leaks past process exit",
                    )
                continue
            if (
                isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Attribute)
                and isinstance(parent.targets[0].value, ast.Name)
                and parent.targets[0].value.id == "self"
                and info.class_name is not None
            ):
                attr = parent.targets[0].attr
                class_info = self.graph.classes.get(info.class_name)
                scope: ast.AST = (
                    class_info.node if class_info is not None else info.node
                )
                missing = self._missing_teardown(
                    scope, attr, through_self=True
                )
                if missing:
                    self._emit(
                        info,
                        call,
                        "RL204",
                        f"shared_memory buffer `self.{attr}` created in "
                        f"`{info.name}` without paired teardown anywhere "
                        f"in the class; missing {' and '.join(missing)}",
                    )
                continue
            self._emit(
                info,
                call,
                "RL204",
                f"shared_memory buffer created in `{info.name}` without "
                "being bound to a name; close()/unlink() ownership "
                "cannot be established",
            )

    @staticmethod
    def _missing_teardown(
        scope: ast.AST, name: str, through_self: bool = False
    ) -> List[str]:
        found: Set[str] = set()
        for node in ast.walk(scope):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
            ):
                continue
            base = node.func.value
            if through_self:
                matches = (
                    isinstance(base, ast.Attribute)
                    and base.attr == name
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                )
            else:
                matches = isinstance(base, ast.Name) and base.id == name
            if matches:
                found.add(node.func.attr)
        return [f"`.{method}()`" for method in ("close", "unlink") if method not in found]

    # -- RL205: schedule identity in fingerprints ------------------------------

    def _check_schedule_sinks(
        self, info: FunctionInfo, module: ModuleInfo
    ) -> None:
        for call in _own_calls(info.node):
            name = _call_name(call)
            if name is None:
                continue
            is_sink = name == "PipelineConfig" or "fingerprint" in name
            if not is_sink:
                continue
            sink_label = f"`{name}(...)`"
            for keyword in call.keywords:
                if keyword.arg in _SCHEDULE_KEYWORDS:
                    self._emit(
                        info,
                        keyword.value,
                        "RL205",
                        f"schedule identity (keyword `{keyword.arg}`) "
                        f"flows into {sink_label} in `{info.name}`; "
                        "worker count and executor identity must stay "
                        "out of configs, echoes, and fingerprints so "
                        "output and resume are worker-count-invariant",
                    )
            for value in [*call.args, *[k.value for k in call.keywords]]:
                self._scan_schedule_sources(info, value, sink_label)
        if (
            info.name.rpartition(".")[2] == "to_echo"
            and info.class_name is not None
            and info.class_name.rpartition(":")[2]
            .rpartition(".")[2]
            .endswith("Config")
        ):
            for stmt in info.node.body:  # type: ignore[attr-defined]
                self._scan_schedule_sources(
                    info, stmt, f"`{info.name}` (config echo)"
                )

    def _scan_schedule_sources(
        self, info: FunctionInfo, scope: ast.AST, sink_label: str
    ) -> None:
        for node in ast.walk(scope):
            source: Optional[str] = None
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _SCHEDULE_ATTRS
            ):
                source = f"`.{node.attr}`"
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in _SCHEDULE_CALLS:
                    source = f"`{name}()`"
            if source is None:
                continue
            self._emit(
                info,
                node,
                "RL205",
                f"schedule identity ({source}) flows into {sink_label} "
                f"in `{info.name}`; worker count and executor identity "
                "must stay out of configs, echoes, and fingerprints so "
                "output and resume are worker-count-invariant",
            )
