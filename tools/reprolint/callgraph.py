"""Module-level call graph over a set of Python sources (stdlib ``ast``).

The per-file rules (RL001-RL007) see one module at a time; the contract
pass (RL100-RL103, ``tools/reprolint/contracts.py``) needs to know that
an unordered-iteration helper three calls deep feeds a function marked
``@ordered_output``. This module builds the graph those checks walk:

* every function and method in the analyzed files becomes a node, named
  ``module:qualpath`` (``repro.mining.fpgrowth:_MFIStore.is_subsumed``);
* call sites are resolved to nodes where that can be done *soundly
  without type inference*: bare names (same-module functions, imported
  functions, re-exports through ``__init__`` chains), ``self.m()`` /
  ``cls.m()`` through the method-resolution order of statically known
  bases, locals assigned from known constructors, inline
  ``ClassName(...).m()``, ``functools.partial(f, ...)``, and relative
  imports resolved against the importing module;
* attribute calls on parameters and unknown objects are deliberately
  *not* resolved. This is a feature, not a limitation: ``self.tracer``
  is an injected dependency whose default is a shared no-op, and
  resolving duck-typed attribute calls would taint every traced
  function with the tracer's clock. Injected-instance calls are the
  seam where the contract system trusts the type system instead.

Unresolved calls are simply absent from the edge list — the taint
propagation under-approximates reachability, which is the conservative
direction for a linter that must not cry wolf.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "build_call_graph",
    "module_name_for_path",
    "dotted_name",
]

#: Path prefixes stripped before deriving a dotted module name, so that
#: ``src/repro/core/pipeline.py`` becomes ``repro.core.pipeline``.
_SOURCE_ROOTS: Tuple[str, ...] = ("src/",)


def module_name_for_path(path: str) -> Tuple[str, bool]:
    """Dotted module name and is-package flag for a repo-relative path."""
    norm = path.replace("\\", "/").lstrip("./")
    for root in _SOURCE_ROOTS:
        if norm.startswith(root):
            norm = norm[len(root):]
            break
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    parts = [part for part in norm.split("/") if part]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


def dotted_name(aliases: Dict[str, str], node: ast.AST) -> Optional[str]:
    """Canonical dotted path for a Name/Attribute chain via ``aliases``.

    Mirrors ``ImportTracker.resolve`` but works on an explicit alias map
    (which, unlike the tracker's, has relative imports resolved).
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method node in the graph."""

    qualname: str  # "repro.mining.fpgrowth:_MFIStore.is_subsumed"
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  # set for methods

    @property
    def name(self) -> str:
        return self.qualname.rpartition(":")[2]

    @property
    def line(self) -> int:
        return int(getattr(self.node, "lineno", 1))


@dataclass
class ClassInfo:
    """A class definition: its methods and statically known bases."""

    qualname: str  # "repro.mining.fpgrowth:_MFIStore"
    module: str
    node: ast.ClassDef
    bases: List[ast.expr] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)  # name -> func qualname


@dataclass
class ModuleInfo:
    """One analyzed module: parse tree plus name-resolution tables."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)  # top-level name -> qualname
    classes: Dict[str, str] = field(default_factory=dict)  # top-level name -> class qualname


class CallGraph:
    """Functions, classes, modules, and resolved caller -> callee edges."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        # caller qualname -> [(callee qualname, call site node)]
        self.edges: Dict[str, List[Tuple[str, ast.AST]]] = {}

    def callees(self, qualname: str) -> List[Tuple[str, ast.AST]]:
        return self.edges.get(qualname, [])

    def add_edge(self, caller: str, callee: str, site: ast.AST) -> None:
        self.edges.setdefault(caller, []).append((callee, site))

    # -- entity resolution --------------------------------------------------

    def resolve_dotted(
        self, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Optional[Tuple[str, str]]:
        """Resolve an absolute dotted path to ("function"|"class", qualname).

        Splits the dotted path at the longest known module prefix, then
        follows re-export aliases (``from .fptree import FPTree`` inside
        a package ``__init__``) recursively with a cycle guard.
        """
        seen = _seen if _seen is not None else set()
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            return self._resolve_in_module(module, parts[cut:], seen)
        return None

    def _resolve_in_module(
        self, module: ModuleInfo, remainder: List[str], seen: Set[str]
    ) -> Optional[Tuple[str, str]]:
        if not remainder:
            return None
        head = remainder[0]
        if head in module.functions and len(remainder) == 1:
            return ("function", module.functions[head])
        if head in module.classes:
            class_qual = module.classes[head]
            if len(remainder) == 1:
                return ("class", class_qual)
            if len(remainder) == 2:
                method = self.lookup_method(class_qual, remainder[1])
                if method is not None:
                    return ("function", method)
            return None
        if head in module.aliases:
            key = f"{module.name}:{head}"
            if key in seen:
                return None
            seen.add(key)
            target = ".".join([module.aliases[head], *remainder[1:]])
            return self.resolve_dotted(target, seen)
        return None

    def lookup_method(
        self, class_qual: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Find ``method`` on the class or its statically known bases."""
        seen = _seen if _seen is not None else {class_qual}
        info = self.classes.get(class_qual)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        module = self.modules.get(info.module)
        for base in info.bases:
            base_qual = self._resolve_class_expr(module, base)
            if base_qual is None or base_qual in seen:
                continue
            seen.add(base_qual)
            found = self.lookup_method(base_qual, method, seen)
            if found is not None:
                return found
        return None

    def constructor_of(self, class_qual: str) -> Optional[str]:
        """The ``__init__`` reached by instantiating the class, if any."""
        return self.lookup_method(class_qual, "__init__")

    def _resolve_class_expr(
        self, module: Optional[ModuleInfo], expr: ast.expr
    ) -> Optional[str]:
        if module is None:
            return None
        if isinstance(expr, ast.Name) and expr.id in module.classes:
            return module.classes[expr.id]
        if isinstance(expr, ast.Subscript):  # Generic[T], Protocol[...] bases
            return self._resolve_class_expr(module, expr.value)
        dotted = dotted_name(module.aliases, expr)
        if dotted is None:
            return None
        resolved = self.resolve_dotted(dotted)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None


def build_call_graph(sources: Sequence[Tuple[str, str]]) -> CallGraph:
    """Build the graph from ``(repo-relative path, source text)`` pairs.

    Files that do not parse are skipped — the per-file lint already
    reports them as RL000.
    """
    graph = CallGraph()
    for path, text in sources:
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError:
            continue
        name, is_package = module_name_for_path(path)
        module = ModuleInfo(name=name, path=path, tree=tree, is_package=is_package)
        graph.modules[name] = module
    for module in graph.modules.values():
        _collect_aliases(module)
        _register_definitions(graph, module)
    for module in graph.modules.values():
        _resolve_module_edges(graph, module)
    return graph


# -- pass 1: aliases and definitions -----------------------------------------


def _collect_aliases(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                module.aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(module, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.aliases[local] = f"{base}.{alias.name}" if base else alias.name


def _import_base(module: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted base of a ``from X import ...``, resolving dots."""
    if not node.level:
        return node.module
    anchor = module.name.split(".") if module.name else []
    if not module.is_package:
        anchor = anchor[:-1]
    extra_levels = node.level - 1
    if extra_levels > len(anchor):
        return None
    if extra_levels:
        anchor = anchor[:-extra_levels]
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor)


def _register_definitions(graph: CallGraph, module: ModuleInfo) -> None:
    def visit(
        statements: Iterable[ast.stmt],
        scope: Tuple[str, ...],
        class_info: Optional[ClassInfo],
        enclosing_function: Optional[str],
    ) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}:{'.'.join((*scope, stmt.name))}"
                info = FunctionInfo(
                    qualname=qualname,
                    module=module.name,
                    path=module.path,
                    node=stmt,
                    class_name=class_info.qualname if class_info else None,
                )
                graph.functions[qualname] = info
                if not scope:
                    module.functions[stmt.name] = qualname
                if class_info is not None:
                    class_info.methods.setdefault(stmt.name, qualname)
                if enclosing_function is not None:
                    # Defining a nested helper almost always means calling
                    # it; the conservative edge keeps taint flowing.
                    graph.add_edge(enclosing_function, qualname, stmt)
                visit(stmt.body, (*scope, stmt.name), None, qualname)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{module.name}:{'.'.join((*scope, stmt.name))}"
                info = ClassInfo(
                    qualname=qualname,
                    module=module.name,
                    node=stmt,
                    bases=list(stmt.bases),
                )
                graph.classes[qualname] = info
                if not scope:
                    module.classes[stmt.name] = qualname
                visit(stmt.body, (*scope, stmt.name), info, enclosing_function)
            else:
                # Descend into if/try/with/for blocks (e.g. defs guarded
                # by TYPE_CHECKING or version checks) without entering
                # expressions.
                nested: List[ast.stmt] = []
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        nested.append(child)
                    elif isinstance(child, ast.excepthandler):
                        nested.extend(child.body)
                if nested:
                    visit(nested, scope, class_info, enclosing_function)

    visit(module.tree.body, (), None, None)


# -- pass 2: call-site resolution --------------------------------------------


def _resolve_module_edges(graph: CallGraph, module: ModuleInfo) -> None:
    for info in sorted(
        (f for f in graph.functions.values() if f.module == module.name),
        key=lambda f: f.qualname,
    ):
        local_types = _local_instance_types(graph, module, info)
        for call in _own_calls(info.node):
            _resolve_call(graph, module, info, call, local_types)


def _own_calls(func_node: ast.AST) -> List[ast.Call]:
    """Call sites in a function body, excluding nested def/class bodies.

    Lambda bodies are *included*: lambdas are not graph nodes, so their
    calls belong to the enclosing function.
    """
    calls: List[ast.Call] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return calls


def _local_instance_types(
    graph: CallGraph, module: ModuleInfo, info: FunctionInfo
) -> Dict[str, str]:
    """Local names assigned from known constructors -> class qualname."""
    types: Dict[str, str] = {}
    for call_stmt in ast.walk(info.node):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(call_stmt, ast.Assign):
            targets, value = call_stmt.targets, call_stmt.value
        elif isinstance(call_stmt, ast.AnnAssign) and call_stmt.value is not None:
            targets, value = [call_stmt.target], call_stmt.value
        if not isinstance(value, ast.Call):
            continue
        class_qual = _class_of_call(graph, module, value)
        if class_qual is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                types[target.id] = class_qual
    return types


def _class_of_call(
    graph: CallGraph, module: ModuleInfo, call: ast.Call
) -> Optional[str]:
    """The class qualname if ``call`` instantiates a known class."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in module.classes:
        return module.classes[func.id]
    dotted = dotted_name(module.aliases, func)
    if dotted is None:
        return None
    resolved = graph.resolve_dotted(dotted)
    if resolved is not None and resolved[0] == "class":
        return resolved[1]
    return None


def _resolve_call(
    graph: CallGraph,
    module: ModuleInfo,
    caller: FunctionInfo,
    call: ast.Call,
    local_types: Dict[str, str],
) -> None:
    func = call.func

    # functools.partial(f, ...): the interesting callee is f.
    partial_target = _partial_target(module, call)
    if partial_target is not None:
        target = _resolve_callable_expr(
            graph, module, caller, partial_target, local_types
        )
        if target is not None:
            graph.add_edge(caller.qualname, target, call)
        return

    target = _resolve_callable_expr(graph, module, caller, func, local_types)
    if target is not None:
        graph.add_edge(caller.qualname, target, call)


def _partial_target(module: ModuleInfo, call: ast.Call) -> Optional[ast.expr]:
    dotted = dotted_name(module.aliases, call.func)
    if dotted == "functools.partial" and call.args:
        return call.args[0]
    return None


def _resolve_callable_expr(
    graph: CallGraph,
    module: ModuleInfo,
    caller: FunctionInfo,
    func: ast.expr,
    local_types: Dict[str, str],
) -> Optional[str]:
    if isinstance(func, ast.Name):
        return _resolve_bare_name(graph, module, func.id)

    if isinstance(func, ast.Attribute):
        value = func.value
        # self.m() / cls.m(): method lookup through the enclosing class.
        if (
            isinstance(value, ast.Name)
            and value.id in ("self", "cls")
            and caller.class_name is not None
        ):
            return graph.lookup_method(caller.class_name, func.attr)
        # obj.m() where obj was assigned from a known constructor.
        if isinstance(value, ast.Name) and value.id in local_types:
            return graph.lookup_method(local_types[value.id], func.attr)
        # ClassName(...).m() inline.
        if isinstance(value, ast.Call):
            class_qual = _class_of_call(graph, module, value)
            if class_qual is not None:
                return graph.lookup_method(class_qual, func.attr)
            return None
        # Dotted module path: pkg.mod.f() or alias.f().
        dotted = dotted_name(module.aliases, func)
        if dotted is not None:
            return _as_callable(graph, graph.resolve_dotted(dotted))
        return None

    return None


def _resolve_bare_name(
    graph: CallGraph, module: ModuleInfo, name: str
) -> Optional[str]:
    if name in module.functions:
        return module.functions[name]
    if name in module.classes:
        return graph.constructor_of(module.classes[name])
    if name in module.aliases:
        return _as_callable(graph, graph.resolve_dotted(module.aliases[name]))
    return None


def _as_callable(
    graph: CallGraph, resolved: Optional[Tuple[str, str]]
) -> Optional[str]:
    if resolved is None:
        return None
    kind, qualname = resolved
    if kind == "function":
        return qualname
    return graph.constructor_of(qualname)
