"""Configuration: the ``[tool.reprolint]`` table of ``pyproject.toml``.

Python 3.11+ parses the file with :mod:`tomllib`. Earlier interpreters
(the repo supports 3.9) fall back to a deliberately tiny TOML-subset
reader that understands exactly the shapes this config uses: section
headers, string/int/bool scalars, and (possibly multi-line) arrays of
strings. No third-party dependency either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    _toml = None  # type: ignore[assignment]

__all__ = ["Config", "ConfigError", "load_config", "find_pyproject"]


class ConfigError(Exception):
    """Malformed ``[tool.reprolint]`` configuration.

    Raised instead of letting a TypeError/AttributeError traceback
    escape: the CLI catches this and exits 2 with the message, so a
    typo'd pyproject fails the build with a diagnosis, not a stack
    trace — and never silently lints with default settings.
    """

DEFAULT_PATHS: Tuple[str, ...] = ("src", "tests", "benchmarks")
DEFAULT_EXCLUDE: Tuple[str, ...] = (
    "__pycache__",
    ".git",
    ".venv",
    "build",
    "dist",
)


@dataclass
class Config:
    """Resolved reprolint settings (defaults match this repository)."""

    paths: Tuple[str, ...] = DEFAULT_PATHS
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE
    select: Tuple[str, ...] = ()  # empty means "all rules"
    ignore: Tuple[str, ...] = ()
    # RL005: path prefixes where wall-clock access is legitimate.
    wallclock_allowed_paths: Tuple[str, ...] = ("benchmarks",)
    # RL007: package roots whose modules must import future annotations.
    future_required_packages: Tuple[str, ...] = ("src/repro",)
    # Like ruff's per-file-ignores: path prefix -> rule codes ignored there.
    per_path_ignores: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    # RL100-RL103: package roots the inter-procedural contract pass
    # (``--contracts``) builds its call graph over.
    contract_packages: Tuple[str, ...] = ("src/repro", "tools/reprolint")

    def rule_enabled(self, code: str, path: str) -> bool:
        """Is ``code`` active for a file at repo-relative ``path``?"""
        if self.select and code not in self.select:
            return False
        if code in self.ignore:
            return False
        norm = path.replace("\\", "/")
        for prefix in sorted(self.per_path_ignores):
            if norm.startswith(prefix.rstrip("/")):
                if code in self.per_path_ignores[prefix]:
                    return False
        return True

    def is_excluded(self, path: str) -> bool:
        parts = Path(path).parts
        return any(pattern in parts for pattern in self.exclude)


def find_pyproject(start: Optional[Path] = None) -> Optional[Path]:
    """Walk up from ``start`` (default cwd) to the nearest pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Optional[Path] = None) -> Config:
    """Build a :class:`Config` from pyproject.toml (or pure defaults)."""
    if pyproject is None:
        pyproject = find_pyproject()
    if pyproject is None or not pyproject.is_file():
        return Config()
    try:
        data = _parse_toml(pyproject)
    except ConfigError:
        raise
    except (OSError, UnicodeDecodeError, ValueError) as exc:
        # tomllib raises TOMLDecodeError (a ValueError subclass).
        raise ConfigError(f"cannot parse {pyproject}: {exc}") from exc
    tool = data.get("tool", {})
    if not isinstance(tool, dict):
        raise ConfigError(f"[tool] in {pyproject} is not a table")
    table = tool.get("reprolint", {})
    if not isinstance(table, dict):
        raise ConfigError(
            f"[tool.reprolint] in {pyproject} must be a table, "
            f"got {type(table).__name__}"
        )
    return _config_from_table(table)


def _config_from_table(table: Mapping[str, Any]) -> Config:
    config = Config()

    def str_tuple(key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        value = table.get(key)
        if value is None:
            return default
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise ConfigError(
                f"[tool.reprolint] `{key}` must be an array of strings, "
                f"got {value!r}"
            )
        return tuple(value)

    config.paths = str_tuple("paths", config.paths)
    config.exclude = str_tuple("exclude", config.exclude)
    config.select = str_tuple("select", config.select)
    config.ignore = str_tuple("ignore", config.ignore)
    config.wallclock_allowed_paths = str_tuple(
        "wallclock-allowed-paths", config.wallclock_allowed_paths
    )
    config.future_required_packages = str_tuple(
        "future-required-packages", config.future_required_packages
    )
    config.contract_packages = str_tuple(
        "contract-packages", config.contract_packages
    )
    raw_ignores = table.get("per-path-ignores")
    if raw_ignores is not None:
        if not isinstance(raw_ignores, dict):
            raise ConfigError(
                "[tool.reprolint] `per-path-ignores` must be a table of "
                f"path prefix -> rule-code arrays, got {raw_ignores!r}"
            )
        per_path: Dict[str, Tuple[str, ...]] = {}
        for prefix, codes in raw_ignores.items():
            if not isinstance(codes, list) or not all(
                isinstance(code, str) for code in codes
            ):
                raise ConfigError(
                    f"[tool.reprolint.per-path-ignores] `{prefix}` must "
                    f"map to an array of rule codes, got {codes!r}"
                )
            per_path[str(prefix)] = tuple(codes)
        config.per_path_ignores = per_path
    return config


# -- TOML loading -----------------------------------------------------------


def _parse_toml(path: Path) -> Dict[str, Any]:
    text = path.read_text(encoding="utf-8")
    if _toml is not None:
        with open(path, "rb") as handle:
            return _toml.load(handle)
    return _parse_toml_subset(text)


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Minimal TOML reader for the config shapes reprolint itself uses.

    Supports ``[dotted.section]`` headers, ``key = value`` with string /
    int / float / bool scalars, and arrays of strings that may span
    lines. Good enough for ``[tool.reprolint]`` on Python < 3.11; any
    richer pyproject content outside that table is skipped, not parsed.
    """
    root: Dict[str, Any] = {}
    current = root
    pending_key: Optional[str] = None
    pending_buffer = ""

    for raw_line in text.splitlines():
        # Strip comments line-by-line: a multi-line array would otherwise
        # lose everything after the first continuation-line comment once
        # the lines are joined.
        line = _strip_comment(raw_line.strip())
        if pending_key is not None:
            pending_buffer += " " + line
            if _array_closed(pending_buffer):
                current[pending_key] = _parse_scalar(pending_buffer)
                pending_key = None
                pending_buffer = ""
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip().strip("\"'")
            current = root
            for part in _split_section(section):
                current = current.setdefault(part, {})
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip("\"'")
        value = value.strip()
        if value.startswith("[") and not _array_closed(value):
            pending_key = key
            pending_buffer = value
            continue
        current[key] = _parse_scalar(value)
    if pending_key is not None:
        raise ConfigError(
            f"unclosed array for key `{pending_key}` at end of file"
        )
    return root


def _split_section(section: str) -> List[str]:
    """Split a dotted section header, honoring quoted segments."""
    parts: List[str] = []
    buffer = ""
    quote = ""
    for char in section:
        if quote:
            if char == quote:
                quote = ""
            else:
                buffer += char
        elif char in "\"'":
            quote = char
        elif char == ".":
            parts.append(buffer.strip())
            buffer = ""
        else:
            buffer += char
    parts.append(buffer.strip())
    return [part for part in parts if part]


def _array_closed(fragment: str) -> bool:
    in_string = False
    quote = ""
    depth = 0
    for char in fragment:
        if in_string:
            if char == quote:
                in_string = False
        elif char in "\"'":
            in_string = True
            quote = char
        elif char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
            if depth == 0:
                return True
    return depth <= 0 and fragment.rstrip().endswith("]")


def _parse_scalar(value: str) -> Any:
    value = _strip_comment(value.strip())
    if value.startswith("["):
        inner = value[value.index("[") + 1 : value.rindex("]")]
        return [
            _parse_scalar(item)
            for item in _split_array_items(inner)
            if item.strip()
        ]
    if value in ("true", "false"):
        return value == "true"
    if value.startswith(("'", '"')):
        return value[1:-1]
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def _strip_comment(value: str) -> str:
    out = ""
    in_string = False
    quote = ""
    for char in value:
        if in_string:
            if char == quote:
                in_string = False
        elif char in "\"'":
            in_string = True
            quote = char
        elif char == "#":
            break
        out += char
    return out.strip()


def _split_array_items(inner: str) -> List[str]:
    items: List[str] = []
    buffer = ""
    in_string = False
    quote = ""
    for char in inner:
        if in_string:
            buffer += char
            if char == quote:
                in_string = False
        elif char in "\"'":
            in_string = True
            quote = char
            buffer += char
        elif char == ",":
            items.append(buffer)
            buffer = ""
        else:
            buffer += char
    if buffer.strip():
        items.append(buffer)
    return items
