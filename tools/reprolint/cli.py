"""Command-line front end: ``python -m tools.reprolint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 bad invocation. Output formats:
``human`` (compiler-style lines plus a per-rule summary) and ``json``
(schema documented in docs/STATIC_ANALYSIS.md and pinned by
tests/test_reprolint.py).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from tools.reprolint.config import (
    Config,
    ConfigError,
    find_pyproject,
    load_config,
)
from tools.reprolint.contracts import CONTRACT_RULES
from tools.reprolint.engine import (
    analyze_contract_paths,
    analyze_parallel_paths,
    analyze_perf_paths,
    lint_paths,
)
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.parallel_safety import PARALLEL_RULES
from tools.reprolint.perf_lint import (
    DEFAULT_MIN_HOT_FRACTION,
    PERF_RULES,
    PerfFinding,
    demote_inventoried,
    parse_baseline,
    render_baseline,
)
from tools.reprolint.profile_join import ProfileError, load_report
from tools.reprolint.rules import ALL_RULES
from tools.reprolint.sarif import render_sarif, rule_catalogue

__all__ = ["main", "build_parser"]

JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "determinism- and safety-focused static analysis for the "
            "uncertain-ER reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories (default: [tool.reprolint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run exclusively (e.g. RL001,RL005)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml to read [tool.reprolint] from "
        "(default: discovered upward from cwd)",
    )
    parser.add_argument(
        "--contracts",
        action="store_true",
        help="additionally run the inter-procedural contract pass "
        "(RL100-RL103) over [tool.reprolint] contract-packages",
    )
    parser.add_argument(
        "--parallel-safety",
        action="store_true",
        help="additionally run the parallel-safety pass (RL200-RL205) "
        "over [tool.reprolint] contract-packages",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="additionally run the performance pass (RL300-RL305) over "
        "[tool.reprolint] contract-packages",
    )
    parser.add_argument(
        "--profile-report",
        type=Path,
        default=None,
        help="RunReport JSON used to rank --perf findings by measured "
        "run-time share (hot findings gate, cold ones warn)",
    )
    parser.add_argument(
        "--min-hot-fraction",
        type=float,
        default=DEFAULT_MIN_HOT_FRACTION,
        help="measured share at or above which a --perf finding is hot "
        f"(default: {DEFAULT_MIN_HOT_FRACTION})",
    )
    parser.add_argument(
        "--perf-baseline",
        type=Path,
        default=None,
        help="accepted-findings inventory consulted to demote known hot "
        "findings (default: <root>/docs/PERF_LINT_BASELINE.md)",
    )
    parser.add_argument(
        "--no-perf-baseline",
        action="store_true",
        help="ignore any committed perf baseline inventory",
    )
    parser.add_argument(
        "--write-perf-baseline",
        type=Path,
        default=None,
        help="write the ranked --perf finding inventory to this path "
        "and continue",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply available autofixes (RL007: insert the missing "
        "`from __future__ import annotations`; RL303: hoist invariant "
        "list membership operands into sets) before linting",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule counts to human output",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_cls in ALL_RULES:
        doc = (rule_cls.__module__ and sys.modules[rule_cls.__module__].__doc__) or ""
        headline = doc.strip().splitlines()[0] if doc.strip() else rule_cls.name
        lines.append(f"{rule_cls.code}  {rule_cls.name:<22} {headline}")
    for code in sorted(CONTRACT_RULES):
        lines.append(
            f"{code}  {CONTRACT_RULES[code]:<22} inter-procedural contract "
            "pass (--contracts)"
        )
    for code in sorted(PARALLEL_RULES):
        lines.append(
            f"{code}  {PARALLEL_RULES[code]:<22} parallel-safety pass "
            "(--parallel-safety)"
        )
    for code in sorted(PERF_RULES):
        lines.append(
            f"{code}  {PERF_RULES[code]:<22} performance pass (--perf)"
        )
    return "\n".join(lines)


def _render_perf_summary(perf_findings: List[PerfFinding]) -> str:
    """Ranked hot-function block appended to human output."""
    groups: dict = {}
    for pf in perf_findings:
        if not pf.hot:
            continue
        entry = groups.setdefault(pf.qualname, [pf.share or 0.0, 0])
        entry[1] += 1
    if not groups:
        return ""
    lines = ["", "hot functions by measured run-time share:"]
    ordered = sorted(groups.items(), key=lambda kv: (-kv[1][0], kv[0]))
    for qualname, (share, count) in ordered:
        plural = "s" if count != 1 else ""
        lines.append(f"{share:>7.1%}  {qualname}  ({count} finding{plural})")
    return "\n".join(lines)


def _render_human(findings: List[Finding], statistics: bool) -> str:
    lines = [finding.format_human() for finding in findings]
    if statistics and findings:
        counts: dict = {}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        lines.append("")
        for rule in sorted(counts):
            lines.append(f"{counts[rule]:>5}  {rule}")
    if findings:
        total = len(findings)
        lines.append(f"found {total} finding{'s' if total != 1 else ''}")
    return "\n".join(lines)


def _render_json(findings: List[Finding]) -> str:
    counts: dict = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "counts": {rule: counts[rule] for rule in sorted(counts)},
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    pyproject = args.config if args.config is not None else find_pyproject()
    if args.config is not None and not args.config.is_file():
        print(f"reprolint: config not found: {args.config}", file=sys.stderr)
        return 2
    try:
        config: Config = load_config(pyproject)
    except ConfigError as exc:
        print(f"reprolint: bad configuration: {exc}", file=sys.stderr)
        return 2

    known_codes = set(rule_catalogue())
    if args.select:
        config.select = tuple(
            code.strip().upper() for code in args.select.split(",") if code.strip()
        )
    if args.ignore:
        config.ignore = tuple(
            code.strip().upper() for code in args.ignore.split(",") if code.strip()
        )
    unknown = [
        code
        for code in (*config.select, *config.ignore)
        if code not in known_codes
    ]
    if unknown:
        print(
            f"reprolint: unknown rule code(s): {', '.join(sorted(set(unknown)))} "
            "(see --list-rules)",
            file=sys.stderr,
        )
        return 2

    root = pyproject.parent if pyproject is not None else Path.cwd()
    paths = list(args.paths) or [root / p for p in config.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"reprolint: no such path(s): {', '.join(missing)}", file=sys.stderr
        )
        return 2

    if args.fix:
        from tools.reprolint.autofix import fix_paths

        for fixed in fix_paths(paths, config=config, root=root):
            print(f"fixed: {fixed}")

    findings = lint_paths(paths, config=config, root=root)

    contract_roots = [
        root / prefix
        for prefix in config.contract_packages
        if (root / prefix).exists()
    ]
    if args.contracts:
        findings = sorted(
            findings
            + analyze_contract_paths(contract_roots, config=config, root=root)
        )
    if args.parallel_safety:
        findings = sorted(
            findings
            + analyze_parallel_paths(contract_roots, config=config, root=root)
        )

    perf_findings: List[PerfFinding] = []
    if args.perf:
        profile = None
        if args.profile_report is not None:
            try:
                profile = load_report(args.profile_report)
            except ProfileError as exc:
                print(f"reprolint: {exc}", file=sys.stderr)
                return 2
        perf_findings = analyze_perf_paths(
            contract_roots,
            config=config,
            root=root,
            profile=profile,
            min_hot_fraction=args.min_hot_fraction,
        )
        if args.write_perf_baseline is not None:
            report_label = (
                _relative_label(args.profile_report, root)
                if args.profile_report is not None
                else "<no profile report>"
            )
            args.write_perf_baseline.write_text(
                render_baseline(
                    perf_findings, report_label, args.min_hot_fraction
                ),
                encoding="utf-8",
            )
            print(f"wrote perf baseline: {args.write_perf_baseline}")
        baseline_path = (
            args.perf_baseline
            if args.perf_baseline is not None
            else root / "docs" / "PERF_LINT_BASELINE.md"
        )
        if not args.no_perf_baseline and baseline_path.is_file():
            inventory = parse_baseline(
                baseline_path.read_text(encoding="utf-8")
            )
            perf_findings = demote_inventoried(perf_findings, inventory)
        findings = sorted(findings + [pf.finding for pf in perf_findings])

    if args.format == "json":
        print(_render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        output = _render_human(findings, statistics=args.statistics)
        output += _render_perf_summary(perf_findings)
        if output:
            print(output)
    # Only errors gate: cold (warning-severity) perf findings inform the
    # ranking without failing the build.
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


def _relative_label(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return str(path)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
