"""Join measured RunReport span times onto call-graph functions.

The RL300 performance pass (``tools/reprolint/perf_lint.py``) ranks its
findings by *measured* time, not by guesswork: a committed RunReport
(``benchmarks/baselines/*.report.json``, schema v1 from
``repro.obs.report``) says where a real run spent its wall clock, and
this module maps that evidence onto the static call graph.

The join has three steps:

1. **Self time per span name.** A report stage's *self* time is its
   total minus its direct children's totals (children are identified by
   the slash-joined ``path`` strings). Stages sharing a name (e.g. four
   ``mfiblocks.minsup`` iterations) are summed.
2. **Span name → site functions.** A *site* is a function whose body
   opens the span: ``tracer.span("mfiblocks.score")`` with a literal
   first argument, or with a module-level string constant (including
   one imported from another module, like the ``WORKER_*`` span names).
   Spans opened with computed names cannot be discovered statically, so
   :data:`DECLARED_SPAN_SITES` pins the load-bearing ones by hand —
   notably the scoring and mining kernels whose spans are opened in
   driver code that the call graph cannot connect to the kernel
   (injected ``config.scoring`` instances, executor-submitted work).
3. **Site → reachable functions.** A span's self time is attributed to
   every function reachable from any of its sites through the call
   graph — except that the walk does not continue *through* a function
   that is a site of some other span: that function's work is measured
   by its own span, so the parent's self time (which excludes child
   spans by construction) cannot flow past it. The site itself is still
   attributed (its body runs under the parent span up to the child
   ``with``). Within those bounds the join still *over*-attributes —
   sibling call paths under one span overlap — so a function's share is
   an upper bound ("code under this function could account for at most
   this fraction of the run"), capped at 1.0. An upper bound is the
   right direction for a ranking signal: the approximation can never
   demote a hot function to cold, only promote a cold one.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from tools.reprolint.callgraph import CallGraph, ModuleInfo, _own_calls

__all__ = [
    "DECLARED_SPAN_SITES",
    "ProfileError",
    "SpanProfile",
    "ProfileJoin",
    "load_report",
    "discover_span_sites",
]


class ProfileError(ValueError):
    """A profile report could not be read or does not look like one."""


#: Hand-declared span name -> function qualnames doing that span's work.
#: These bridge the joins the call graph cannot make statically: the
#: block-scoring span is opened in MFIBlocks driver code that reaches
#: the scorer only through an injected ``config.scoring`` instance, and
#: the parallel mining/classify spans wrap ``executor.map_chunks`` whose
#: work function travels as data, not as a call.
DECLARED_SPAN_SITES: Dict[str, Tuple[str, ...]] = {
    "mfiblocks.score": (
        "repro.blocking.scoring:BlockScorer.score_block",
        "repro.blocking.scoring:BlockScorer.pair_similarity",
        "repro.parallel.work:score_pair_chunk",
    ),
    "mfiblocks.mine": (
        "repro.mining.fpgrowth:maximal_frequent_itemsets",
    ),
    "fpgrowth.build_tree": (
        "repro.mining.fpgrowth:_build_tree",
    ),
    "fpgrowth.fpmax": (
        "repro.mining.fpgrowth:_fpmax",
        "repro.mining.fpgrowth:_mine_shard",
    ),
    "classify.rank": (
        "repro.parallel.work:classify_pair_chunk",
    ),
    "classify.features": (
        "repro.similarity.features:extract_features",
    ),
}


class SpanProfile:
    """Per-span-name self seconds from one RunReport."""

    def __init__(
        self, self_seconds: Dict[str, float], total_seconds: float
    ) -> None:
        self.self_seconds = self_seconds
        self.total_seconds = total_seconds

    def share(self, span_name: str) -> float:
        """Fraction of the measured run the span's own code accounts for."""
        if self.total_seconds <= 0:
            return 0.0
        return self.self_seconds.get(span_name, 0.0) / self.total_seconds


def load_report(path: Path) -> SpanProfile:
    """Read a RunReport JSON file into per-span self times.

    Accepts schema-v1 reports (``{"schema": 1, "stages": [...],
    "total_seconds": ...}``). Raises :class:`ProfileError` on anything
    else — a perf gate fed a wrong file must fail loudly, not rank
    everything cold.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProfileError(f"cannot read profile report {path}: {exc}")
    if not isinstance(payload, dict) or "stages" not in payload:
        raise ProfileError(
            f"{path} is not a RunReport (no 'stages' block)"
        )
    stages = payload["stages"]
    if not isinstance(stages, list):
        raise ProfileError(f"{path}: 'stages' is not a list")
    totals: Dict[str, float] = {}
    names: Dict[str, str] = {}
    children_sum: Dict[str, float] = {}
    for stage in stages:
        try:
            stage_path = stage["path"]
            name = stage["name"]
            seconds = float(stage["total_seconds"])
        except (TypeError, KeyError, ValueError) as exc:
            raise ProfileError(f"{path}: malformed stage entry: {exc}")
        totals[stage_path] = totals.get(stage_path, 0.0) + seconds
        names[stage_path] = name
        parent, _, _ = stage_path.rpartition("/")
        if parent:
            children_sum[parent] = children_sum.get(parent, 0.0) + seconds
    self_seconds: Dict[str, float] = {}
    for stage_path in sorted(totals):
        own = totals[stage_path] - children_sum.get(stage_path, 0.0)
        if own < 0.0:
            own = 0.0  # clock noise: children can overshoot the parent
        name = names[stage_path]
        self_seconds[name] = self_seconds.get(name, 0.0) + own
    total = payload.get("total_seconds")
    if not isinstance(total, (int, float)) or total <= 0:
        # Fall back to the root stages' sum when the header is absent.
        total = sum(
            totals[p] for p in sorted(totals) if "/" not in p
        )
    return SpanProfile(self_seconds, float(total))


def _module_str_constants(module: ModuleInfo) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments (span-name table)."""
    constants: Dict[str, str] = {}
    for stmt in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not (
            isinstance(value, ast.Constant) and isinstance(value.value, str)
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = value.value
    return constants


def _span_name_of_arg(
    graph: CallGraph,
    module: ModuleInfo,
    arg: ast.expr,
    constants: Dict[str, str],
) -> Optional[str]:
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.Name):
        if arg.id in constants:
            return constants[arg.id]
        dotted = module.aliases.get(arg.id)
        if dotted is not None:
            # `from repro.obs.worker import WORKER_CHUNK_SPAN`: chase the
            # constant into its defining module.
            origin, _, const_name = dotted.rpartition(".")
            target = graph.modules.get(origin)
            if target is not None:
                return _module_str_constants(target).get(const_name)
    return None


def discover_span_sites(graph: CallGraph) -> Dict[str, Set[str]]:
    """Span name -> functions whose own body opens that span.

    Finds ``<anything>.span(<name>)`` calls whose first argument is a
    string literal or a resolvable module-level string constant.
    Computed names (f-strings, locals) are skipped — declare those in
    :data:`DECLARED_SPAN_SITES` if they matter to the ranking.
    """
    sites: Dict[str, Set[str]] = {}
    constants_cache: Dict[str, Dict[str, str]] = {}
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        module = graph.modules[info.module]
        if module.name not in constants_cache:
            constants_cache[module.name] = _module_str_constants(module)
        for call in _own_calls(info.node):
            if not (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "span"
                and call.args
            ):
                continue
            name = _span_name_of_arg(
                graph, module, call.args[0], constants_cache[module.name]
            )
            if name is not None:
                sites.setdefault(name, set()).add(qualname)
    return sites


class ProfileJoin:
    """Measured share per function: the ranking signal of the perf pass."""

    def __init__(
        self,
        graph: CallGraph,
        profile: SpanProfile,
        declared_sites: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> None:
        self.graph = graph
        self.profile = profile
        declared = (
            declared_sites if declared_sites is not None
            else DECLARED_SPAN_SITES
        )
        self.sites: Dict[str, Set[str]] = discover_span_sites(graph)
        for span_name in sorted(declared):
            known = {
                q for q in declared[span_name] if q in graph.functions
            }
            if known:
                self.sites.setdefault(span_name, set()).update(known)
        #: function qualname -> span names it is a site for
        self._site_spans: Dict[str, Set[str]] = {}
        for span_name in sorted(self.sites):
            for site in sorted(self.sites[span_name]):
                self._site_spans.setdefault(site, set()).add(span_name)
        #: span name -> functions its self time is attributed to
        self._attributed: Dict[str, Set[str]] = {}
        for span_name in sorted(self.sites):
            if self.profile.share(span_name) <= 0.0:
                continue
            self._attributed[span_name] = self._attributed_for(span_name)

    def _attributed_for(self, span_name: str) -> Set[str]:
        """Functions the span's self time can reach.

        BFS from the span's sites that attributes every visited
        function but does not expand callees of a function that is a
        site of a *different* span — that function's work has its own
        measurement, so this span's self time stops at its door.
        """
        visited: Set[str] = set()
        queue: List[str] = sorted(self.sites[span_name])
        visited.update(queue)
        while queue:
            current = queue.pop(0)
            other_spans = self._site_spans.get(current, set()) - {span_name}
            if other_spans and current not in self.sites[span_name]:
                continue  # measured by its own span: attribute, don't expand
            for callee, _site in self.graph.callees(current):
                if callee not in visited and callee in self.graph.functions:
                    visited.add(callee)
                    queue.append(callee)
        return visited

    def share_of(self, qualname: str) -> Optional[float]:
        """Upper-bound fraction of measured run time reaching ``qualname``.

        ``None`` means no measured span reaches the function at all —
        distinct from a measured-but-tiny share, which is a float.
        """
        total = 0.0
        seen = False
        for span_name in sorted(self._attributed):
            if qualname in self._attributed[span_name]:
                seen = True
                total += self.profile.share(span_name)
        if not seen:
            return None
        return min(total, 1.0)
