"""RL007 — missing ``from __future__ import annotations``.

Library modules (``future-required-packages``, default ``src/repro``)
must defer annotation evaluation: it keeps the 3.9 floor working with
modern annotation syntax, makes annotations free at import time, and
keeps the strict-mypy hot path annotatable without runtime cost.

Modules whose only statements are a docstring are exempt; everything
else in the configured packages — including ``__init__`` re-export
modules — needs the import as its first code statement.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule, RuleContext


class FutureAnnotationsRule(Rule):
    code = "RL007"
    name = "future-annotations"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        path = context.path.replace("\\", "/")
        if not any(
            path.startswith(package.rstrip("/") + "/")
            for package in context.config.future_required_packages
        ):
            return
        statements = [
            stmt
            for stmt in context.tree.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            )
        ]
        if not statements:
            return  # docstring-only module (or empty __init__)
        for stmt in statements:
            if isinstance(stmt, ast.ImportFrom) and stmt.module == "__future__":
                if any(alias.name == "annotations" for alias in stmt.names):
                    return
        yield self.finding(
            context,
            statements[0],
            "library module lacks `from __future__ import annotations`; "
            "add it directly below the module docstring",
        )
