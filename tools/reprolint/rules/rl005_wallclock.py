"""RL005 — wall-clock access outside the benchmark tree.

Library code that reads the clock (``datetime.now()``, ``time.time()``,
``time.perf_counter()``...) produces output that varies run-over-run by
construction. Timing belongs in ``benchmarks/`` (configurable via
``wallclock-allowed-paths``); library code should take timestamps as
parameters if it needs them at all.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule, RuleContext

_CLOCK_CALLS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)


class WallClockRule(Rule):
    code = "RL005"
    name = "wall-clock"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        path = context.path.replace("\\", "/")
        for allowed in context.config.wallclock_allowed_paths:
            if path.startswith(allowed.rstrip("/")):
                return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = context.imports.resolve(node.func)
            if qualname in _CLOCK_CALLS:
                yield self.finding(
                    context,
                    node,
                    f"`{qualname}()` reads the clock outside the benchmark "
                    "tree; pass timestamps in as parameters so library "
                    "output stays reproducible",
                )
