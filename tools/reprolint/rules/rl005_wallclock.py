"""RL005 — wall-clock access outside the benchmark tree.

Library code that reads the clock (``datetime.now()``, ``time.time()``,
``time.perf_counter()``...) produces output that varies run-over-run by
construction. Timing belongs in ``benchmarks/`` (configurable via
``wallclock-allowed-paths``); library code should take timestamps as
parameters if it needs them at all.

Two exemption mechanisms, in order of preference:

* a ``@repro.contracts.impure("...")`` decorator on the enclosing
  function — the declaration travels with the code, is visible at the
  call site, and feeds the inter-procedural contract pass (RL100-RL103);
* a ``wallclock-allowed-paths`` prefix in ``[tool.reprolint]`` — a
  blanket waiver for whole trees (the benchmark tree).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule, RuleContext

_CLOCK_CALLS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)


class WallClockRule(Rule):
    code = "RL005"
    name = "wall-clock"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        path = context.path.replace("\\", "/")
        for allowed in context.config.wallclock_allowed_paths:
            if path.startswith(allowed.rstrip("/")):
                return
        declared_impure = _impure_call_ids(context)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if id(node) in declared_impure:
                continue
            qualname = context.imports.resolve(node.func)
            if qualname in _CLOCK_CALLS:
                yield self.finding(
                    context,
                    node,
                    f"`{qualname}()` reads the clock outside the benchmark "
                    "tree; pass timestamps in as parameters so library "
                    "output stays reproducible, or declare the function "
                    "`@impure` (repro.contracts) with a justification",
                )


def _impure_call_ids(context: RuleContext) -> Set[int]:
    """ids of Call nodes inside ``@impure``-decorated functions.

    An ``@impure`` declaration is the contract system's explicit,
    per-function wall-clock waiver (the ``repro.obs.clock`` case):
    the impurity is documented where it lives and the RL100-RL103
    contract pass keeps callers honest about reaching it.
    """
    exempt: Set[int] = set()
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(
            _is_impure_decorator(context, decorator)
            for decorator in node.decorator_list
        ):
            continue
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                exempt.add(id(child))
    return exempt


def _is_impure_decorator(context: RuleContext, decorator: ast.AST) -> bool:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    resolved = context.imports.resolve(target)
    return resolved is not None and (
        resolved == "contracts.impure" or resolved.endswith(".contracts.impure")
    )
