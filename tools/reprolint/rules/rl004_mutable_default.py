"""RL004 — mutable default argument.

A ``def f(cache={})`` default is created once at function definition and
shared by every call — state leaks across pipeline runs, which is both a
correctness bug and a reproducibility hazard (the second run sees the
first run's accumulations). Default to ``None`` and construct inside.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule, RuleContext

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)


class MutableDefaultRule(Rule):
    code = "RL004"
    name = "mutable-default"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [
                *node.args.defaults,
                *[d for d in node.args.kw_defaults if d is not None],
            ]
            for default in defaults:
                if _is_mutable(default):
                    yield self.finding(
                        context,
                        default,
                        f"mutable default argument in `{node.name}()`; "
                        "default to None and build the container inside "
                        "the function body",
                    )


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CONSTRUCTORS
    return False
