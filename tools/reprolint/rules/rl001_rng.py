"""RL001 — unseeded or process-global RNG use.

The pipeline's claim to reproducibility dies the moment any stage draws
from the process-global random state: two runs over the same corpus can
then rank candidate pairs differently. Randomness must flow from an
explicitly seeded generator object (``random.Random(seed)`` or
``numpy.random.default_rng(seed)``) that callers inject.

Flagged:

* module-level ``random`` functions (``random.random()``,
  ``random.shuffle()``, ``random.seed()``, ...), including when imported
  directly (``from random import shuffle``);
* ``numpy.random`` legacy module functions (``np.random.rand()``,
  ``np.random.seed()``, ...);
* constructing a generator with no seed: ``random.Random()``,
  ``numpy.random.default_rng()``, ``numpy.random.PCG64()`` et al.

Not flagged: ``random.Random(seed)``, ``default_rng(seed)``, and any
call on a generator *instance* (instances are invisible to the alias
tracker, which is exactly right — instance state is the injected,
seeded kind).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule, RuleContext

# Functions on the global `random` module state. `Random` / `SystemRandom`
# are class constructors, handled separately.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

# Seedable generator constructors: fine with arguments, findings without.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.PCG64",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.RandomState",
    }
)


class UnseededRandomRule(Rule):
    code = "RL001"
    name = "unseeded-rng"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = context.imports.resolve(node.func)
            if qualname is None:
                continue
            yield from self._check_call(context, node, qualname)

    def _check_call(
        self, context: RuleContext, node: ast.Call, qualname: str
    ) -> Iterator[Finding]:
        if qualname in _SEEDABLE_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield self.finding(
                    context,
                    node,
                    f"`{qualname}()` constructed without a seed; pass an "
                    "explicit seed (or SeedSequence) so runs are repeatable",
                )
            return
        module, _, func = qualname.rpartition(".")
        if module == "random" and func in _GLOBAL_RANDOM_FUNCS:
            yield self.finding(
                context,
                node,
                f"`random.{func}()` uses the process-global RNG; draw from "
                "an injected `random.Random(seed)` instance instead",
            )
        elif module == "numpy.random" and func not in {"default_rng"}:
            # Everything else on numpy.random module scope is the legacy
            # global RandomState (np.random.rand, np.random.seed, ...).
            yield self.finding(
                context,
                node,
                f"`numpy.random.{func}()` uses the global legacy "
                "RandomState; thread a seeded `numpy.random.Generator` "
                "through instead",
            )
