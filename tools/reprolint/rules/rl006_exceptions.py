"""RL006 — bare ``except`` and silently swallowed exceptions.

A pipeline stage that catches everything and does nothing turns a
corrupted intermediate (an unparseable record, a failed similarity
computation) into silently wrong benchmark numbers. Catch the narrowest
exception you can, and never with an empty body.

Flagged:

* ``except:`` with no exception type (also traps KeyboardInterrupt);
* any handler whose body is only ``pass``/``...`` — the swallow — when
  it catches ``Exception``/``BaseException`` or is bare. Narrow
  swallows (``except KeyError: pass``) are idiomatic and allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule, RuleContext

_BROAD = frozenset({"Exception", "BaseException"})


class SwallowedExceptionRule(Rule):
    code = "RL006"
    name = "swallowed-exception"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            bare = node.type is None
            if bare:
                yield self.finding(
                    context,
                    node,
                    "bare `except:` also traps KeyboardInterrupt/SystemExit; "
                    "name the exception types this stage can recover from",
                )
                continue
            if _is_swallow(node.body) and _catches_broad(node.type):
                yield self.finding(
                    context,
                    node,
                    "broad exception silently swallowed; handle, log, or "
                    "re-raise so pipeline corruption cannot pass unnoticed",
                )


def _is_swallow(body: list) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def _catches_broad(type_node: ast.expr) -> bool:
    if isinstance(type_node, ast.Tuple):
        return any(_catches_broad(elt) for elt in type_node.elts)
    if isinstance(type_node, ast.Name):
        return type_node.id in _BROAD
    if isinstance(type_node, ast.Attribute):
        return type_node.attr in _BROAD
    return False
