"""RL003 — exact equality comparison against floats.

Similarity and confidence scores are sums/products of floats; two
mathematically equal pipelines can produce values differing in the last
ulp, so ``score == 0.5`` silently flips depending on evaluation order.
Compare with ``math.isclose(a, b, abs_tol=...)`` and an explicit,
justified epsilon — or, for genuine sentinel checks (exact zero guard
on an untouched accumulator), suppress with a justification.

Flagged: ``==`` / ``!=`` where either operand is a float literal or a
division expression. Integer-valued floats in membership tests and
``is None`` checks are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule, RuleContext


class FloatEqualityRule(Rule):
    code = "RL003"
    name = "float-equality"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(_is_floatish(operand) for operand in operands):
                    yield self.finding(
                        context,
                        node,
                        "exact float equality; use `math.isclose(...)` "
                        "with an explicit tolerance (or suppress with a "
                        "justification for sentinel checks)",
                    )
                    break


def _is_floatish(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    return False
