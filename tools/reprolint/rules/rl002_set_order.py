"""RL002 — unordered iteration feeding ordered output.

CPython randomizes string hashing per process, so the iteration order of
a ``set`` of strings (or tuples of strings — our record pairs) differs
between runs. Any ranked list, CSV row sequence, or report built by
iterating a set without sorting is therefore nondeterministic — the
exact failure mode that would invalidate every benchmark table.

The rule is syntactic but flow-aware within a scope:

* it infers "set-typed" expressions — literals, comprehensions,
  ``set()``/``frozenset()`` calls, set-operator results, set-method
  results, and local names whose every assignment is set-typed;
* it then walks outward from each use to the nearest *order-revealing*
  consumer: ``list()``/``tuple()``/``enumerate()``/``iter()``/
  ``reversed()``, ``.join()``, a list/generator comprehension, or a
  ``for`` loop whose body emits sequentially (``yield``, ``.append``,
  ``.writerow``, ``.write``, ``print``);
* consumers that are order-insensitive (``sorted``, ``min``, ``max``,
  ``sum``, ``len``, ``any``, ``all``, membership tests, building another
  set/dict) absorb the nondeterminism and end the walk quietly.

``dict.values()`` / ``dict.keys()`` views are insertion-ordered, so they
are only *weakly* unordered (the order is deterministic if insertions
were); they are flagged only when they reach a serialization sink
(``.join``, ``.write``/``.writerow``, ``print``) without a sort.

Fix by sorting with an explicit key at the boundary::

    for pair in sorted(candidate_pairs):          # not: in candidate_pairs
        writer.writerow(pair)
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule, RuleContext, attach_parents

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_OPERATORS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SAFE_CONSUMERS = frozenset(
    {
        "sorted", "min", "max", "sum", "len", "any", "all", "set",
        "frozenset", "bool", "Counter", "dict",
    }
)
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})
_EMITTING_METHODS = frozenset(
    {"append", "extend", "insert", "writerow", "writerows", "write"}
)
_SINK_METHODS = frozenset({"writerow", "writerows", "write"})

_ScopeNode = ast.AST  # Module / FunctionDef / AsyncFunctionDef / Lambda


class UnorderedIterationRule(Rule):
    code = "RL002"
    name = "unordered-iteration"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        parents = attach_parents(context.tree)
        set_vars = _collect_set_variables(context.tree)
        reported: Set[Tuple[int, int]] = set()

        for node in ast.walk(context.tree):
            weak = False
            if _is_set_expr(node, set_vars, parents):
                # Skip uses that are themselves part of a larger set
                # expression; the outermost expression walks for both.
                parent = parents.get(node)
                if parent is not None and _is_set_expr(
                    parent, set_vars, parents
                ):
                    continue
            elif _is_dict_view(node):
                weak = True
            else:
                continue
            flagged = _walk_to_consumer(node, parents, weak=weak)
            if flagged is None:
                continue
            key = (flagged.lineno, flagged.col_offset)
            if key in reported:
                continue
            reported.add(key)
            kind = "dict view" if weak else "set"
            yield self.finding(
                context,
                flagged,
                f"iteration order of a {kind} reaches ordered output; "
                "wrap the iterable in `sorted(...)` with a deterministic "
                "key before ranking/serialization",
            )


# -- set-typed inference -----------------------------------------------------


def _enclosing_scope(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Optional[_ScopeNode]:
    current = parents.get(node)
    while current is not None:
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module),
        ):
            return current
        current = parents.get(current)
    return None


def _collect_set_variables(tree: ast.Module) -> Dict[Tuple[int, str], bool]:
    """(scope-id, name) -> True iff *every* assignment there is set-typed."""
    verdicts: Dict[Tuple[int, str], List[bool]] = {}

    def visit_scope(scope: _ScopeNode, body: List[ast.stmt]) -> None:
        local_sets: Dict[Tuple[int, str], bool] = {}

        def is_set(node: ast.AST) -> bool:
            return _is_set_expr(node, dict(local_sets), {}, shallow=True)

        for stmt in _iter_scope_statements(body):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            verdict = is_set(value)
            for target in targets:
                if isinstance(target, ast.Name):
                    key = (id(scope), target.id)
                    verdicts.setdefault(key, []).append(verdict)
                    local_sets[key] = all(verdicts[key])

    # Walk all scopes: module plus every function.
    visit_scope(tree, tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_scope(node, node.body)

    return {key: all(values) for key, values in verdicts.items() if values}


def _iter_scope_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of a scope, descending into blocks but not functions."""
    stack = list(body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.excepthandler):
                stack.extend(child.body)


def _is_set_expr(
    node: ast.AST,
    set_vars: Dict[Tuple[int, str], bool],
    parents: Dict[ast.AST, ast.AST],
    shallow: bool = False,
) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_set_expr(func.value, set_vars, parents, shallow=shallow)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPERATORS):
        return _is_set_expr(
            node.left, set_vars, parents, shallow=shallow
        ) or _is_set_expr(node.right, set_vars, parents, shallow=shallow)
    if isinstance(node, ast.Name) and not shallow:
        scope = _enclosing_scope(node, parents)
        while scope is not None:
            key = (id(scope), node.id)
            if key in set_vars:
                return set_vars[key]
            scope = _enclosing_scope(scope, parents)
        return False
    if isinstance(node, ast.Name) and shallow:
        return any(
            name == node.id and verdict
            for (_, name), verdict in set_vars.items()
        )
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in {"values", "keys"}
        and not node.args
        and not node.keywords
    )


# -- consumer walk -----------------------------------------------------------


def _walk_to_consumer(
    node: ast.AST, parents: Dict[ast.AST, ast.AST], weak: bool
) -> Optional[ast.AST]:
    """Return the node to report, or None when order never becomes visible."""
    current: ast.AST = node
    while True:
        parent = parents.get(current)
        if parent is None:
            return None

        if isinstance(parent, ast.Call):
            if current in parent.args or any(
                kw.value is current for kw in parent.keywords
            ):
                func = parent.func
                if isinstance(func, ast.Name):
                    if func.id in _SAFE_CONSUMERS:
                        return None
                    if not weak and func.id in _ORDERED_CONSUMERS:
                        return current
                    if func.id == "print":
                        return current
                    return None  # unknown callee: stay conservative
                if isinstance(func, ast.Attribute):
                    if func.attr == "join":
                        return current
                    if func.attr in _SINK_METHODS:
                        return current
                    return None
                return None
            if parent.func is current:  # x().method — not a consumption
                return None
            current = parent
            continue

        if isinstance(parent, ast.Starred):
            current = parent
            continue

        if isinstance(parent, ast.Compare):
            # `x in some_set` — membership, order-free.
            return None

        if isinstance(parent, ast.For) and parent.iter is current:
            if weak:
                return current if _loop_emits(parent, sinks_only=True) else None
            return current if _loop_emits(parent, sinks_only=False) else None

        if isinstance(parent, ast.comprehension) and parent.iter is current:
            comp = parents.get(parent)
            if isinstance(comp, (ast.SetComp, ast.DictComp)):
                return None  # lands in another unordered container
            if isinstance(comp, (ast.ListComp, ast.GeneratorExp)):
                current = comp  # the comprehension inherits the hazard
                continue
            return None

        if isinstance(parent, ast.BinOp) and isinstance(
            parent.op, _SET_OPERATORS
        ):
            current = parent
            continue

        if isinstance(parent, (ast.Expr, ast.Await)):
            current = parent
            continue

        # Assignment, return, subscript, arbitrary expression: order is
        # not (yet) observable here. Assigned names are re-checked at
        # their own use sites via the set-variable inference.
        return None


def _loop_emits(loop: ast.For, sinks_only: bool) -> bool:
    methods = _SINK_METHODS if sinks_only else _EMITTING_METHODS
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if not sinks_only and isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in methods:
                    return True
                if isinstance(func, ast.Name) and func.id == "print":
                    return True
    return False
