"""Rule registry: every rule class, in catalogue order."""

from __future__ import annotations

from typing import Dict, List, Type

from tools.reprolint.rules.base import Rule
from tools.reprolint.rules.rl001_rng import UnseededRandomRule
from tools.reprolint.rules.rl002_set_order import UnorderedIterationRule
from tools.reprolint.rules.rl003_float_eq import FloatEqualityRule
from tools.reprolint.rules.rl004_mutable_default import MutableDefaultRule
from tools.reprolint.rules.rl005_wallclock import WallClockRule
from tools.reprolint.rules.rl006_exceptions import SwallowedExceptionRule
from tools.reprolint.rules.rl007_future import FutureAnnotationsRule

ALL_RULES: List[Type[Rule]] = [
    UnseededRandomRule,
    UnorderedIterationRule,
    FloatEqualityRule,
    MutableDefaultRule,
    WallClockRule,
    SwallowedExceptionRule,
    FutureAnnotationsRule,
]

RULES_BY_CODE: Dict[str, Type[Rule]] = {rule.code: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_CODE", "Rule"]
