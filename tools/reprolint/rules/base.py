"""Shared rule infrastructure: context, base class, import resolution.

Rules are single-file AST passes. Each receives a :class:`RuleContext`
(parsed tree, source, repo-relative path, config) and yields
:class:`~tools.reprolint.findings.Finding` objects. The engine owns
suppression filtering and ordering; rules just report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from tools.reprolint.config import Config
from tools.reprolint.findings import Finding, Severity

__all__ = ["Rule", "RuleContext", "ImportTracker", "attach_parents"]


@dataclass
class RuleContext:
    """Everything a rule may inspect about one module."""

    path: str  # repo-relative, forward slashes
    source: str
    tree: ast.Module
    config: Config
    imports: "ImportTracker" = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportTracker(self.tree)


class Rule:
    """Base class. Subclasses set ``code``/``name`` and implement check."""

    code: str = "RL000"
    name: str = "base"
    severity: Severity = Severity.ERROR

    def check(self, context: RuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        context: RuleContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
            severity=severity or self.severity,
        )


class ImportTracker:
    """Resolve local names back to canonical dotted module paths.

    Handles the aliasing forms that matter for our rules::

        import random                       random        -> random
        import numpy as np                  np            -> numpy
        import numpy.random as npr          npr           -> numpy.random
        from numpy import random as nr      nr            -> numpy.random
        from numpy.random import default_rng
                                            default_rng   -> numpy.random.default_rng
        from datetime import datetime       datetime      -> datetime.datetime
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports cannot be stdlib RNG/clock
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path for a Name/Attribute chain, if importish.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``numpy.random.rand``; a chain rooted at a non-imported name
        resolves to ``None``.
        """
        parts = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.aliases.get(current.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def attach_parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    """Build a child -> parent map (``ast`` has no parent pointers)."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents
