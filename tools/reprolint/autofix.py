"""Autofixes: mechanical rewrites for rules with one correct remedy.

Two rules qualify today. RL007 (missing ``from __future__ import
annotations``) — a single unambiguous insertion — and RL303 (O(n)
membership test in a loop), whose remedy is equally mechanical: hoist
the loop-invariant list/tuple operand into ``name_set = set(name)``
directly above the loop and probe the set instead. Both fixers are:

* **idempotent** — fixing an already-fixed module returns it unchanged,
  byte for byte (the RL303 rewrite leaves a ``set(...)``-typed operand,
  which the rule no longer matches);
* **surgical** — the RL007 import lands directly below the module
  docstring; the RL303 hoist lands at the loop's own indentation and
  only the flagged membership operands are renamed;
* **consistent with the rule** — a site the lint would not flag
  (suppressed, config-ignored, mutated in the loop, not a sequence
  local) is never rewritten, so ``--fix`` can never introduce a diff
  the lint did not ask for.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.config import Config
from tools.reprolint.engine import (
    _discover,
    _read_sources,
    _relative_path,
    analyze_perf_sources,
    lint_file,
)
from tools.reprolint.rules.rl007_future import FutureAnnotationsRule

__all__ = ["fix_future_annotations", "fix_membership_sets", "fix_paths"]

_IMPORT_LINE = "from __future__ import annotations\n"


def fix_future_annotations(source: str) -> str:
    """Insert the future-annotations import; no-op when not needed."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source  # RL000 territory; nothing mechanical to do
    has_docstring = bool(
        tree.body
        and isinstance(tree.body[0], ast.Expr)
        and isinstance(tree.body[0].value, ast.Constant)
        and isinstance(tree.body[0].value.value, str)
    )
    statements = tree.body[1:] if has_docstring else tree.body
    if not statements:
        return source  # docstring-only module: RL007 exempts it
    for stmt in statements:
        if isinstance(stmt, ast.ImportFrom) and stmt.module == "__future__":
            if any(alias.name == "annotations" for alias in stmt.names):
                return source
    lines = source.splitlines(keepends=True)
    if has_docstring:
        insert_at = int(tree.body[0].end_lineno or tree.body[0].lineno)
        insertion = "\n" + _IMPORT_LINE
    else:
        insert_at = statements[0].lineno - 1
        insertion = _IMPORT_LINE + "\n"
    return "".join([*lines[:insert_at], insertion, *lines[insert_at:]])


def fix_membership_sets(
    sources: Sequence[tuple],
    config: Optional[Config] = None,
) -> Dict[str, str]:
    """Fixed texts for files with hoistable RL303 membership tests.

    Runs the performance pass over the (path, source) set (the unit of
    analysis is the whole call graph, as for linting) and rewrites only
    the sites it flags — suppressions and config filters therefore gate
    the fixer exactly as they gate the finding. Returns a mapping of
    relative path -> new text for files that changed.
    """
    config = config or Config()
    flagged: Dict[str, List[Tuple[int, int]]] = {}
    for pf in analyze_perf_sources(sources, config=config):
        if pf.finding.rule == "RL303":
            flagged.setdefault(pf.finding.path, []).append(
                (pf.finding.line, pf.finding.col)
            )
    texts = dict(sources)
    out: Dict[str, str] = {}
    for path in sorted(flagged):
        updated = _apply_membership_fixes(texts[path], flagged[path])
        if updated is not None and updated != texts[path]:
            out[path] = updated
    return out


def _apply_membership_fixes(
    source: str, positions: Sequence[Tuple[int, int]]
) -> Optional[str]:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    wanted = set(positions)
    # group key: (loop, operand name) -> operand Name nodes to rename
    groups: Dict[Tuple[ast.AST, str], List[ast.Name]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if (node.lineno, node.col_offset + 1) not in wanted:
            continue
        operand = node.comparators[0] if node.comparators else None
        if not isinstance(operand, ast.Name):
            continue
        loop = parents.get(node)
        while loop is not None and not isinstance(
            loop, (ast.For, ast.AsyncFor, ast.While)
        ):
            loop = parents.get(loop)
        if loop is None:
            continue
        func = parents.get(loop)
        while func is not None and not isinstance(
            func, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            func = parents.get(func)
        if func is None:
            continue
        set_name = f"{operand.id}_set"
        if any(
            isinstance(n, ast.Name) and n.id == set_name
            for n in ast.walk(func)
        ):
            continue  # the hoisted name would shadow something real
        groups.setdefault((loop, operand.id), []).append(operand)

    if not groups:
        return None
    lines = source.splitlines(keepends=True)
    renames: List[Tuple[int, int, str, str]] = []
    insertions: Set[Tuple[int, str]] = set()
    for (loop, name), operands in groups.items():
        set_name = f"{name}_set"
        ok = True
        for operand in operands:
            row, col = operand.lineno - 1, operand.col_offset
            if not lines[row][col:].startswith(name):
                ok = False  # source/AST mismatch: leave the file alone
                break
        if not ok:
            continue
        for operand in operands:
            renames.append(
                (operand.lineno - 1, operand.col_offset, name, set_name)
            )
        loop_row = loop.lineno - 1  # type: ignore[attr-defined]
        text = lines[loop_row]
        indent = text[: len(text) - len(text.lstrip())]
        insertions.add((loop_row, f"{indent}{set_name} = set({name})\n"))
    if not renames:
        return None
    for row, col, name, set_name in sorted(renames, reverse=True):
        line = lines[row]
        lines[row] = line[:col] + set_name + line[col + len(name):]
    for row, text in sorted(insertions, reverse=True):
        lines.insert(row, text)
    return "".join(lines)


def fix_paths(
    paths: Iterable[Path],
    config: Optional[Config] = None,
    root: Optional[Path] = None,
) -> List[str]:
    """Apply autofixes to every fixable file; returns rewritten paths.

    Only files where RL007 or RL303 actually fire (per config: required
    packages, excludes, select/ignore, suppressions) are touched, and
    RL303 rewrites are further restricted to files under the given
    paths even though the analysis spans the contract packages.
    """
    config = config or Config()
    root = root or Path.cwd()
    fixed: List[str] = []
    for file_path in _discover(paths, config, root):
        findings = lint_file(
            file_path,
            config=config,
            root=root,
            rules=[FutureAnnotationsRule],
        )
        if not any(f.rule == "RL007" for f in findings):
            continue
        source = file_path.read_text(encoding="utf-8")
        updated = fix_future_annotations(source)
        if updated != source:
            file_path.write_text(updated, encoding="utf-8")
            fixed.append(_relative_path(file_path, root))

    selected = {
        _relative_path(p, root) for p in _discover(paths, config, root)
    }
    contract_roots = [
        root / prefix
        for prefix in config.contract_packages
        if (root / prefix).exists()
    ]
    graph_sources = _read_sources(contract_roots, config, root)
    for relative, new_text in sorted(
        fix_membership_sets(graph_sources, config=config).items()
    ):
        if relative not in selected:
            continue
        (root / relative).write_text(new_text, encoding="utf-8")
        if relative not in fixed:
            fixed.append(relative)
    return sorted(fixed)
