"""Autofixes: mechanical rewrites for rules with one correct remedy.

Only RL007 (missing ``from __future__ import annotations``) qualifies
today — the fix is a single unambiguous insertion. The fixer is:

* **idempotent** — fixing an already-fixed module returns it unchanged,
  byte for byte;
* **surgical** — the import lands directly below the module docstring
  (or above the first statement when there is none), leaving shebangs,
  encoding cookies, and leading comments untouched;
* **consistent with the rule** — a module RL007 would not flag
  (docstring-only, or outside ``future-required-packages``) is returned
  unchanged, so ``--fix`` can never introduce a diff the lint did not
  ask for.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional

from tools.reprolint.config import Config
from tools.reprolint.engine import _discover, _relative_path, lint_file
from tools.reprolint.rules.rl007_future import FutureAnnotationsRule

__all__ = ["fix_future_annotations", "fix_paths"]

_IMPORT_LINE = "from __future__ import annotations\n"


def fix_future_annotations(source: str) -> str:
    """Insert the future-annotations import; no-op when not needed."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source  # RL000 territory; nothing mechanical to do
    has_docstring = bool(
        tree.body
        and isinstance(tree.body[0], ast.Expr)
        and isinstance(tree.body[0].value, ast.Constant)
        and isinstance(tree.body[0].value.value, str)
    )
    statements = tree.body[1:] if has_docstring else tree.body
    if not statements:
        return source  # docstring-only module: RL007 exempts it
    for stmt in statements:
        if isinstance(stmt, ast.ImportFrom) and stmt.module == "__future__":
            if any(alias.name == "annotations" for alias in stmt.names):
                return source
    lines = source.splitlines(keepends=True)
    if has_docstring:
        insert_at = int(tree.body[0].end_lineno or tree.body[0].lineno)
        insertion = "\n" + _IMPORT_LINE
    else:
        insert_at = statements[0].lineno - 1
        insertion = _IMPORT_LINE + "\n"
    return "".join([*lines[:insert_at], insertion, *lines[insert_at:]])


def fix_paths(
    paths: Iterable[Path],
    config: Optional[Config] = None,
    root: Optional[Path] = None,
) -> List[str]:
    """Apply autofixes to every fixable file; returns rewritten paths.

    Only files where RL007 actually fires (per config: required
    packages, excludes, select/ignore, suppressions) are touched.
    """
    config = config or Config()
    root = root or Path.cwd()
    fixed: List[str] = []
    for file_path in _discover(paths, config, root):
        findings = lint_file(
            file_path,
            config=config,
            root=root,
            rules=[FutureAnnotationsRule],
        )
        if not any(f.rule == "RL007" for f in findings):
            continue
        source = file_path.read_text(encoding="utf-8")
        updated = fix_future_annotations(source)
        if updated != source:
            file_path.write_text(updated, encoding="utf-8")
            fixed.append(_relative_path(file_path, root))
    return fixed
