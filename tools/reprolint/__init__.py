"""reprolint — repo-specific determinism and safety lints.

A small AST-based static-analysis pass (stdlib only) enforcing the
reproducibility contract of this repository: ranked pair lists must be
byte-identical run-over-run, so unseeded randomness, order-dependent
iteration over unordered collections, and exact float comparisons on
scores are all build-breaking findings.

Run it as a module::

    python -m tools.reprolint src tests benchmarks

Rules
-----
RL001  unseeded or process-global RNG use
RL002  iteration order of ``set``/``dict.values()`` feeding ordered output
RL003  float equality comparison (use ``math.isclose`` with an epsilon)
RL004  mutable default argument
RL005  wall-clock access outside the benchmark tree
RL006  bare ``except`` or silently swallowed exception
RL007  missing ``from __future__ import annotations`` in library modules

Findings are suppressed per line with ``# reprolint: disable=RL002`` (a
justification after ``--`` is encouraged) and configured via the
``[tool.reprolint]`` table in ``pyproject.toml``.
"""

from tools.reprolint.findings import Finding, Severity
from tools.reprolint.config import Config, load_config
from tools.reprolint.engine import lint_file, lint_paths, lint_source

__version__ = "1.0.0"

__all__ = [
    "Config",
    "Finding",
    "Severity",
    "__version__",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
]
