"""RL300-series performance pass: a loop-nesting cost model, profile-ranked.

Open item 2 of the roadmap — vectorizing the 48-feature similarity
kernel and the FPMax inner loops — needs a mechanical worklist, not a
hunch. This pass produces it. It walks the same call graph as the
contract and parallel-safety passes, restricted to the *hot set*:
functions reachable from an executor work root (``map_chunks`` /
``submit`` submission sites, ``@picklable_work``) or from an explicit
``@hot_path`` annotation. Inside those functions it applies a small
loop-cost model:

========  ====================  =========================================
 Code      Name                  What it catches
========  ====================  =========================================
 RL300     per-element-loop      A Python-level loop (or comprehension)
                                 calling per element — the "should be a
                                 batch kernel" signal.
 RL301     inner-loop-alloc      list/dict/set construction at loop
                                 nesting depth >= 2: allocation inside
                                 the quadratic region.
 RL302     loop-invariant-call   A call whose operands are all loop
                                 invariant — hoistable above the loop.
 RL303     linear-membership     ``x in some_list`` inside a loop where
                                 the operand is a local list/tuple:
                                 O(n) per probe where a set is O(1).
 RL304     accumulation          ``str +=`` / repeated list ``+`` in a
                                 loop: quadratic reallocation.
 RL305     invariant-relookup    ``len(inv)`` / ``inv[key]`` recomputed
                                 every iteration of a hot loop.
========  ====================  =========================================

``@batch_kernel`` is the declared endpoint: the pass neither analyzes
its body nor traverses into it, so a finished vectorization removes its
findings without suppressions.

The headline mechanism is **profile-guided ranking**
(``tools/reprolint/profile_join.py``): with ``--profile-report`` the
pass annotates every finding with the measured upper-bound share of run
time that can reach its function, marks findings at or above
``--min-hot-fraction`` *hot* (severity ``error``), and everything else
*cold* (severity ``warning``). The gate therefore fails only on code
the committed baseline reports prove expensive; the ranked hot list is
the vectorization plan, inventoried in ``docs/PERF_LINT_BASELINE.md``.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    _local_instance_types,
    _own_calls,
    _partial_target,
    _resolve_callable_expr,
)
from tools.reprolint.contracts import PERF_KINDS, contracts_for
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.parallel_safety import (
    _SUBMIT_METHODS,
    _chain_root,
    _local_binding,
)
from tools.reprolint.profile_join import ProfileJoin, SpanProfile

__all__ = [
    "PERF_RULES",
    "DEFAULT_MIN_HOT_FRACTION",
    "PerfFinding",
    "check_perf",
    "render_baseline",
    "parse_baseline",
    "demote_inventoried",
]

#: Rule code -> short kebab name (must match docs/STATIC_ANALYSIS.md).
PERF_RULES: Dict[str, str] = {
    "RL300": "per-element-loop",
    "RL301": "inner-loop-alloc",
    "RL302": "loop-invariant-call",
    "RL303": "linear-membership",
    "RL304": "accumulation",
    "RL305": "invariant-relookup",
}

#: Findings whose function's measured share is at or above this are hot.
DEFAULT_MIN_HOT_FRACTION = 0.02

#: Bare constructor calls that allocate (RL301) when unresolved in-graph.
_ALLOC_CALLS = frozenset({"list", "dict", "set", "frozenset", "bytearray"})

#: Methods that mutate a list/tuple-ish receiver (RL303 safety check).
_SEQUENCE_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort",
     "reverse"}
)


@dataclass
class PerfFinding:
    """A :class:`Finding` plus its profile-join annotations."""

    finding: Finding
    qualname: str  #: hot function the finding lives in
    share: Optional[float]  #: measured upper-bound run-time share
    hot: bool  #: share >= min_hot_fraction (never True without a profile)


class _Loop:
    """One loop (or comprehension) and the names it binds."""

    __slots__ = ("node", "kind", "depth", "bound", "rl300_calls", "seen_keys")

    def __init__(
        self, node: ast.AST, kind: str, depth: int, bound: Set[str]
    ) -> None:
        self.node = node
        self.kind = kind  # "for" | "while" | "comp"
        self.depth = depth  # statement-loop nesting depth
        self.bound = bound
        self.rl300_calls: List[str] = []
        self.seen_keys: Set[Tuple[str, ...]] = set()


def _region_bound(nodes: Sequence[ast.AST]) -> Set[str]:
    """Names bound anywhere in the given subtrees.

    Deliberately over-approximate: comprehension targets and lambda
    parameters count as bound even though their scope is narrower —
    treating them as loop-varying can only suppress findings, never
    invent invariance.
    """
    bound: Set[str] = set()
    stack: List[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            bound.add(node.name)
            continue  # nested scopes bind nothing in the loop
        if isinstance(node, ast.Lambda):
            args = node.args
            bound.update(
                a.arg
                for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            )
            if args.vararg is not None:
                bound.add(args.vararg.arg)
            if args.kwarg is not None:
                bound.add(args.kwarg.arg)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        stack.extend(ast.iter_child_nodes(node))
    return bound


def _call_refs(call: ast.Call) -> Set[str]:
    """Load-context names the call's result can depend on.

    The bare callee name itself is excluded — ``f(x)`` depends on ``x``,
    not on the binding of ``f`` — but an attribute receiver chain stays
    in: ``obj.f(x)`` depends on ``obj``.
    """
    refs: Set[str] = set()
    for node in ast.walk(call):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            refs.add(node.id)
    if isinstance(call.func, ast.Name):
        refs.discard(call.func.id)
    return refs


def _func_args(func_node: ast.AST) -> Set[str]:
    args = func_node.args  # type: ignore[attr-defined]
    names = {
        a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    }
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


class _PerfChecker:
    def __init__(
        self,
        graph: CallGraph,
        join: Optional[ProfileJoin],
        min_hot_fraction: float,
    ) -> None:
        self.graph = graph
        self.join = join
        self.min_hot_fraction = min_hot_fraction
        #: function qualname -> contract kinds declared on it
        self.contracts: Dict[str, Set[str]] = {}
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            module = graph.modules[info.module]
            declared = contracts_for(module, info.node)
            if declared:
                self.contracts[qualname] = {c.kind for c in declared}
        self.perf_findings: List[PerfFinding] = []
        self._seen: Set[Tuple[str, int, int, str, str]] = set()

    # -- hot-set construction -------------------------------------------------

    def _work_roots(self) -> Set[str]:
        """Executor submission targets, resolved without emitting RL200
        (the parallel pass owns the diagnostics; here they are roots)."""
        roots: Set[str] = set()
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            module = self.graph.modules[info.module]
            local_types = _local_instance_types(self.graph, module, info)
            for call in _own_calls(info.node):
                if not (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in _SUBMIT_METHODS
                    and call.args
                ):
                    continue
                resolved = self._resolve_work_expr(
                    info, module, local_types, call.args[0]
                )
                if resolved is not None:
                    roots.add(resolved)
        return roots

    def _resolve_work_expr(
        self,
        info: FunctionInfo,
        module: ModuleInfo,
        local_types: Dict[str, str],
        expr: ast.expr,
        _chased: Optional[Set[str]] = None,
    ) -> Optional[str]:
        if isinstance(expr, ast.Call):
            target = _partial_target(module, expr)
            if target is not None:
                return self._resolve_work_expr(
                    info, module, local_types, target, _chased
                )
            return None
        if isinstance(expr, ast.Name):
            nested = f"{info.qualname}.{expr.id}"
            if nested in self.graph.functions:
                return nested
        qualname = _resolve_callable_expr(
            self.graph, module, info, expr, local_types
        )
        if qualname is None and isinstance(expr, ast.Name):
            chased = _chased if _chased is not None else set()
            if expr.id not in chased:
                chased.add(expr.id)
                value = _local_binding(info.node, expr.id)
                if value is not None:
                    return self._resolve_work_expr(
                        info, module, local_types, value, chased
                    )
        if qualname is not None and qualname in self.graph.functions:
            return qualname
        return None

    def _hot_set(self) -> Set[str]:
        roots = self._work_roots()
        for qualname in sorted(self.contracts):
            kinds = self.contracts[qualname]
            if "picklable_work" in kinds or "hot_path" in kinds:
                roots.add(qualname)
        hot: Set[str] = set()
        queue: List[str] = []
        for qualname in sorted(roots):
            if "batch_kernel" in self.contracts.get(qualname, set()):
                continue  # declared endpoint, even as a root
            hot.add(qualname)
            queue.append(qualname)
        while queue:
            current = queue.pop(0)
            for callee, _site in self.graph.callees(current):
                if callee in hot or callee not in self.graph.functions:
                    continue
                if "batch_kernel" in self.contracts.get(callee, set()):
                    continue  # do not traverse into declared kernels
                hot.add(callee)
                queue.append(callee)
        return hot

    # -- analysis driver ------------------------------------------------------

    def run(self) -> List[PerfFinding]:
        for qualname in sorted(self._hot_set()):
            info = self.graph.functions[qualname]
            module = self.graph.modules[info.module]
            local_types = _local_instance_types(self.graph, module, info)
            scan = _FunctionScan(self, info, module, local_types)
            scan.run()
        self.perf_findings.sort(
            key=lambda pf: (
                0 if pf.hot else 1,
                -(pf.share if pf.share is not None else 0.0),
                pf.finding,
            )
        )
        return self.perf_findings

    def _emit(
        self,
        info: FunctionInfo,
        node: ast.AST,
        rule: str,
        message: str,
    ) -> None:
        share: Optional[float] = None
        if self.join is not None:
            share = self.join.share_of(info.qualname)
        hot = share is not None and share >= self.min_hot_fraction
        if self.join is None:
            suffix = ""
        elif share is None:
            suffix = " [cold: no measured time]"
        elif hot:
            suffix = f" [hot: {share:.1%} of measured run time]"
        else:
            suffix = f" [cold: {share:.1%} of measured run time]"
        finding = Finding(
            path=info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message + suffix,
            severity=Severity.ERROR if hot else Severity.WARNING,
        )
        key = (finding.path, finding.line, finding.col, rule, finding.message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.perf_findings.append(
            PerfFinding(
                finding=finding,
                qualname=info.qualname,
                share=share,
                hot=hot,
            )
        )


class _FunctionScan:
    """Loop-cost analysis of one hot function's own body."""

    def __init__(
        self,
        checker: _PerfChecker,
        info: FunctionInfo,
        module: ModuleInfo,
        local_types: Dict[str, str],
    ) -> None:
        self.checker = checker
        self.graph = checker.graph
        self.info = info
        self.module = module
        self.local_types = local_types
        self.args = _func_args(info.node)
        self.loops: List[_Loop] = []

    def run(self) -> None:
        for stmt in self.info.node.body:  # type: ignore[attr-defined]
            self._visit(stmt, [])
        for loop in self.loops:
            if not loop.rl300_calls:
                continue
            first = loop.rl300_calls[0]
            extra = len(loop.rl300_calls) - 1
            more = f" (+{extra} more)" if extra else ""
            what = (
                "comprehension" if loop.kind == "comp"
                else "per-element Python loop"
            )
            self.checker._emit(
                self.info,
                loop.node,
                "RL300",
                f"{what} in hot function `{self.info.qualname}` calls "
                f"`{first}` per element{more}; batch this work or mark "
                "the implementation @batch_kernel once vectorized",
            )

    # -- tree walk ------------------------------------------------------------

    def _visit(self, node: ast.AST, stack: List[_Loop]) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # separate graph nodes, scanned on their own
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._visit(node.iter, stack)  # header runs once, outside
            loop = _Loop(
                node,
                "for",
                self._stmt_depth(stack) + 1,
                _region_bound([node.target, *node.body, *node.orelse]),
            )
            self.loops.append(loop)
            inner = stack + [loop]
            for child in [*node.body, *node.orelse]:
                self._visit(child, inner)
            return
        if isinstance(node, ast.While):
            self._visit(node.test, stack)
            loop = _Loop(
                node,
                "while",
                self._stmt_depth(stack) + 1,
                _region_bound([*node.body, *node.orelse]),
            )
            self.loops.append(loop)
            inner = stack + [loop]
            for child in [*node.body, *node.orelse]:
                self._visit(child, inner)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            if not isinstance(node, ast.GeneratorExp):
                self._check_allocation(node, stack)  # comp-in-loop allocates
            self._visit(node.generators[0].iter, stack)
            comp = _Loop(
                node,
                "comp",
                self._stmt_depth(stack),
                _region_bound([g.target for g in node.generators]),
            )
            self.loops.append(comp)
            inner = stack + [comp]
            parts: List[ast.expr] = (
                [node.key, node.value]
                if isinstance(node, ast.DictComp)
                else [node.elt]
            )
            for gen in node.generators[1:]:
                parts.append(gen.iter)
            for gen in node.generators:
                parts.extend(gen.ifs)
            for part in parts:
                self._visit(part, inner)
            return
        if isinstance(node, ast.AnnAssign):
            # The annotation is typing syntax (e.g. `path: List[int]`),
            # not runtime work: walk only the target and value.
            self._check_node(node, stack)
            self._visit(node.target, stack)
            if node.value is not None:
                self._visit(node.value, stack)
            return
        self._check_node(node, stack)
        for child in ast.iter_child_nodes(node):
            self._visit(child, stack)

    @staticmethod
    def _stmt_depth(stack: List[_Loop]) -> int:
        return sum(1 for loop in stack if loop.kind != "comp")

    @staticmethod
    def _stmt_loop(stack: List[_Loop]) -> Optional[_Loop]:
        for loop in reversed(stack):
            if loop.kind != "comp":
                return loop
        return None

    # -- per-node checks ------------------------------------------------------

    def _check_node(self, node: ast.AST, stack: List[_Loop]) -> None:
        if isinstance(node, ast.Call):
            self._check_call(node, stack)
        elif isinstance(node, (ast.List, ast.Dict, ast.Set)):
            self._check_allocation(node, stack)
        elif isinstance(node, ast.Compare):
            self._check_membership(node, stack)
        elif isinstance(node, ast.AugAssign):
            self._check_accumulation_aug(node, stack)
        elif isinstance(node, ast.Assign):
            self._check_accumulation_assign(node, stack)
        elif isinstance(node, ast.Subscript):
            self._check_relookup_subscript(node, stack)

    def _resolve_call(self, call: ast.Call) -> Optional[str]:
        resolved = _resolve_callable_expr(
            self.graph, self.module, self.info, call.func, self.local_types
        )
        if resolved is None and isinstance(call.func, ast.Name):
            nested = f"{self.info.qualname}.{call.func.id}"
            if nested in self.graph.functions:
                return nested
        if resolved is not None and resolved in self.graph.functions:
            return resolved
        return None

    def _check_call(self, call: ast.Call, stack: List[_Loop]) -> None:
        stmt_loop = self._stmt_loop(stack)
        bare = call.func.id if isinstance(call.func, ast.Name) else None

        # RL301: bare builtin constructor calls allocate.
        if (
            bare in _ALLOC_CALLS
            and self._resolve_call(call) is None
        ):
            self._check_allocation(call, stack)

        # RL305: len() of a loop-invariant name, recomputed per iteration.
        if (
            bare == "len"
            and stmt_loop is not None
            and len(call.args) == 1
            and isinstance(call.args[0], ast.Name)
            and isinstance(call.args[0].ctx, ast.Load)
            and call.args[0].id not in stmt_loop.bound
            and self._resolve_call(call) is None
        ):
            key = ("len", call.args[0].id)
            if key not in stmt_loop.seen_keys:
                stmt_loop.seen_keys.add(key)
                self.checker._emit(
                    self.info,
                    call,
                    "RL305",
                    f"`len({call.args[0].id})` is loop-invariant but "
                    "recomputed every iteration; hoist it above the loop",
                )
            return

        if not stack:
            return
        innermost = stack[-1]
        refs = _call_refs(call)
        resolved = self._resolve_call(call)
        is_attribute = isinstance(call.func, ast.Attribute)
        if resolved is None and not is_attribute:
            return  # bare unresolved name: a builtin, not our cost model

        if refs & innermost.bound:
            # RL300: the call varies per element of the innermost loop.
            innermost.rl300_calls.append(self._display(call))
            return

        # RL302: every operand is invariant w.r.t. the enclosing
        # *statement* loop — the whole call hoists above it.
        if stmt_loop is None or innermost.kind == "comp":
            return
        if refs & stmt_loop.bound:
            return
        if resolved is None:
            root = _chain_root(call.func)
            if root is None or root.id in stmt_loop.bound:
                return
        self.checker._emit(
            self.info,
            call,
            "RL302",
            f"call `{self._display(call)}` has only loop-invariant "
            "operands; hoist it above the loop",
        )

    def _display(self, call: ast.Call) -> str:
        try:
            text = ast.unparse(call.func)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            text = "<call>"
        if len(text) > 40:
            text = text[:37] + "..."
        return f"{text}(...)"

    def _check_allocation(self, node: ast.AST, stack: List[_Loop]) -> None:
        stmt_loop = self._stmt_loop(stack)
        if stmt_loop is None or stmt_loop.depth < 2:
            return
        kinds = {
            ast.List: "list literal",
            ast.Dict: "dict literal",
            ast.Set: "set literal",
            ast.ListComp: "list comprehension",
            ast.SetComp: "set comprehension",
            ast.DictComp: "dict comprehension",
        }
        label = kinds.get(type(node))
        if label is None and isinstance(node, ast.Call):
            label = f"{node.func.id}() call"  # type: ignore[attr-defined]
        if label is None:
            return
        self.checker._emit(
            self.info,
            node,
            "RL301",
            f"{label} allocates inside a depth-{stmt_loop.depth} inner "
            "loop; allocate once outside or restructure the loop",
        )

    def _check_membership(self, node: ast.Compare, stack: List[_Loop]) -> None:
        stmt_loop = self._stmt_loop(stack)
        if stmt_loop is None:
            return
        if len(node.ops) != 1 or not isinstance(
            node.ops[0], (ast.In, ast.NotIn)
        ):
            return
        operand = node.comparators[0]
        if not (
            isinstance(operand, ast.Name)
            and isinstance(operand.ctx, ast.Load)
        ):
            return
        name = operand.id
        if name in stmt_loop.bound or name in self.args:
            return
        if not self._is_sequence_local(name):
            return
        if self._mutated_in_loop(stmt_loop, name):
            return
        self.checker._emit(
            self.info,
            node,
            "RL303",
            f"membership test against list/tuple local `{name}` is O(n) "
            "per probe inside a loop; build a set once before the loop",
        )

    def _is_sequence_local(self, name: str) -> bool:
        """True when every plain assignment to ``name`` is a list/tuple."""
        values: List[ast.expr] = []
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.AugAssign) and (
                isinstance(node.target, ast.Name)
                and node.target.id == name
            ):
                return False  # augmented rebinding: type unclear
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            if not any(
                isinstance(t, ast.Name) and t.id == name for t in targets
            ):
                continue
            if node.value is not None:
                values.append(node.value)
        if not values:
            return False
        for value in values:
            if isinstance(value, (ast.List, ast.Tuple)):
                continue
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "tuple", "sorted")
                and self._resolve_call(value) is None
            ):
                continue
            return False
        return True

    def _mutated_in_loop(self, loop: _Loop, name: str) -> bool:
        for node in ast.walk(loop.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and node.func.attr in _SEQUENCE_MUTATORS
            ):
                return True
        return False

    def _check_accumulation_aug(
        self, node: ast.AugAssign, stack: List[_Loop]
    ) -> None:
        if not (
            isinstance(node.op, ast.Add) and isinstance(node.target, ast.Name)
        ):
            return
        self._check_accumulation(node, node.target.id, stack)

    def _check_accumulation_assign(
        self, node: ast.Assign, stack: List[_Loop]
    ) -> None:
        if len(node.targets) != 1 or not isinstance(
            node.targets[0], ast.Name
        ):
            return
        target = node.targets[0].id
        value = node.value
        if not (isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add)):
            return
        sides = (value.left, value.right)
        if not any(
            isinstance(side, ast.Name) and side.id == target
            for side in sides
        ):
            return
        self._check_accumulation(node, target, stack)

    def _check_accumulation(
        self, node: ast.stmt, target: str, stack: List[_Loop]
    ) -> None:
        stmt_loop = self._stmt_loop(stack)
        if stmt_loop is None:
            return
        kind = self._initializer_kind(target, stmt_loop)
        if kind == "str":
            self.checker._emit(
                self.info,
                node,
                "RL304",
                f"string accumulation into `{target}` in a loop is "
                "quadratic; collect parts and `''.join` once",
            )
        elif kind == "list":
            self.checker._emit(
                self.info,
                node,
                "RL304",
                f"repeated list concatenation into `{target}` in a loop "
                "is quadratic; use `.append`/`.extend`",
            )

    def _initializer_kind(self, name: str, loop: _Loop) -> Optional[str]:
        """Classify ``name`` by its earliest plain assignment above the
        loop: ``"str"``, ``"list"``, or None (numeric/unknown: exempt)."""
        earliest: Optional[ast.expr] = None
        earliest_line = loop.node.lineno  # type: ignore[attr-defined]
        for node in ast.walk(self.info.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            if not any(
                isinstance(t, ast.Name) and t.id == name for t in targets
            ):
                continue
            if node.value is None or node.lineno >= earliest_line:
                continue
            earliest = node.value
            earliest_line = node.lineno
        if earliest is None:
            return None
        if isinstance(earliest, ast.Constant) and isinstance(
            earliest.value, str
        ):
            return "str"
        if isinstance(earliest, ast.JoinedStr):
            return "str"
        if isinstance(earliest, ast.List):
            return "list"
        if (
            isinstance(earliest, ast.Call)
            and isinstance(earliest.func, ast.Name)
            and earliest.func.id == "list"
            and self._resolve_call(earliest) is None
        ):
            return "list"
        return None

    def _check_relookup_subscript(
        self, node: ast.Subscript, stack: List[_Loop]
    ) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        stmt_loop = self._stmt_loop(stack)
        if stmt_loop is None:
            return
        if not (
            isinstance(node.value, ast.Name)
            and isinstance(node.value.ctx, ast.Load)
            and node.value.id not in stmt_loop.bound
        ):
            return
        index = node.slice
        if isinstance(index, ast.Constant):
            index_key = repr(index.value)
        elif (
            isinstance(index, ast.Name)
            and isinstance(index.ctx, ast.Load)
            and index.id not in stmt_loop.bound
        ):
            index_key = index.id
        else:
            return
        key = ("sub", node.value.id, index_key)
        if key in stmt_loop.seen_keys:
            return
        stmt_loop.seen_keys.add(key)
        self.checker._emit(
            self.info,
            node,
            "RL305",
            f"lookup `{node.value.id}[{index_key}]` is loop-invariant "
            "but repeated every iteration; hoist it above the loop",
        )


def check_perf(
    graph: CallGraph,
    profile: Optional[SpanProfile] = None,
    min_hot_fraction: float = DEFAULT_MIN_HOT_FRACTION,
    declared_sites: Optional[Dict[str, Tuple[str, ...]]] = None,
) -> List[PerfFinding]:
    """Run RL300-RL305 over the graph's hot set.

    With ``profile`` the findings carry measured shares and hot findings
    are errors; without it everything is a warning (nothing measured,
    nothing gated). Hot findings come first, ranked by share.
    """
    join: Optional[ProfileJoin] = None
    if profile is not None:
        join = ProfileJoin(graph, profile, declared_sites=declared_sites)
    return _PerfChecker(graph, join, min_hot_fraction).run()


# -- baseline inventory -------------------------------------------------------


def _group(
    perf_findings: Iterable[PerfFinding],
) -> Dict[Tuple[str, str, str], List[PerfFinding]]:
    groups: Dict[Tuple[str, str, str], List[PerfFinding]] = {}
    for pf in perf_findings:
        key = (pf.finding.rule, pf.qualname, pf.finding.path)
        groups.setdefault(key, []).append(pf)
    return groups


def render_baseline(
    perf_findings: Sequence[PerfFinding],
    report_path: str,
    min_hot_fraction: float = DEFAULT_MIN_HOT_FRACTION,
) -> str:
    """Render the accepted finding inventory (``docs/PERF_LINT_BASELINE.md``).

    Line-number free on purpose: the inventory keys findings by
    (rule, function, file) so unrelated edits do not invalidate it.
    Byte-deterministic for a given finding list — the self-sweep test
    regenerates it and compares bytes.
    """
    groups = _group(perf_findings)
    hot_rows: List[Tuple[float, str, str, str, int]] = []
    cold_rows: List[Tuple[str, str, str, int]] = []
    for key in sorted(groups):
        rule, qualname, path = key
        members = groups[key]
        if any(pf.hot for pf in members):
            share = max(pf.share or 0.0 for pf in members)
            hot_rows.append((share, rule, qualname, path, len(members)))
        else:
            cold_rows.append((rule, qualname, path, len(members)))
    hot_rows.sort(key=lambda row: (-row[0], row[1], row[2], row[3]))

    lines = [
        "# Performance-lint baseline inventory",
        "",
        "The accepted RL300-series worklist: every *hot* finding of",
        "`repro lint --perf` (measured run-time share at or above the",
        "threshold) must appear here or the lint gate fails. Entries are",
        "keyed by (rule, function, file) — no line numbers — so routine",
        "edits do not invalidate the inventory. Shrink this file by",
        "vectorizing an entry and marking the result `@batch_kernel`;",
        "never grow it without a review.",
        "",
        "Regenerate after intentional changes with:",
        "",
        "    repro lint src tools --perf \\",
        f"        --profile-report {report_path} \\",
        "        --write-perf-baseline docs/PERF_LINT_BASELINE.md",
        "",
        f"Profile report: `{report_path}`. Hot threshold: share >= "
        f"{min_hot_fraction:.1%} (`--min-hot-fraction "
        f"{min_hot_fraction}`). Shares are upper bounds: a span's self",
        "time is attributed to every function reachable from its site,",
        "so sibling entries overlap and do not sum to 100%.",
        "",
        "## Hot findings (ranked by measured share)",
        "",
    ]
    if hot_rows:
        lines.append(
            "| rank | share | rule | name | function | file | findings |"
        )
        lines.append(
            "|------|-------|------|------|----------|------|----------|"
        )
        for rank, (share, rule, qualname, path, count) in enumerate(
            hot_rows, start=1
        ):
            lines.append(
                f"| {rank} | {share:.1%} | {rule} | {PERF_RULES[rule]} | "
                f"`{qualname}` | {path} | {count} |"
            )
    else:
        lines.append("(none)")
    lines += [
        "",
        "## Cold findings (below threshold; informational, never gate)",
        "",
    ]
    if cold_rows:
        lines.append("| rule | name | function | file | findings |")
        lines.append("|------|------|----------|------|----------|")
        for rule, qualname, path, count in cold_rows:
            lines.append(
                f"| {rule} | {PERF_RULES[rule]} | `{qualname}` | {path} | "
                f"{count} |"
            )
    else:
        lines.append("(none)")
    lines.append("")
    return "\n".join(lines)


_BASELINE_ROW = re.compile(r"^\|.*\bRL3\d\d\b.*\|$")


def parse_baseline(text: str) -> Dict[Tuple[str, str, str], int]:
    """Inventory keys -> accepted counts, from a baseline document.

    Only the hot table counts: a cold row must not pre-absorb the
    finding if its function later turns hot — that regression should
    fail the gate until the inventory is regenerated deliberately.
    """
    inventory: Dict[Tuple[str, str, str], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("## Cold findings"):
            break
        if not _BASELINE_ROW.match(line):
            continue
        cells = [cell.strip() for cell in line.split("|")[1:-1]]
        rule = next(
            (c for c in cells if re.fullmatch(r"RL3\d\d", c)), None
        )
        qualname = next(
            (
                c.strip("`")
                for c in cells
                if ":" in c and not c.startswith("RL")
            ),
            None,
        )
        path = next((c for c in cells if c.endswith(".py")), None)
        count: Optional[int] = None
        for cell in reversed(cells):
            if cell.isdigit():
                count = int(cell)
                break
        if rule is None or qualname is None or path is None or count is None:
            continue
        key = (rule, qualname, path)
        inventory[key] = inventory.get(key, 0) + count
    return inventory


def demote_inventoried(
    perf_findings: Sequence[PerfFinding],
    inventory: Dict[Tuple[str, str, str], int],
) -> List[PerfFinding]:
    """Demote hot findings covered by the committed inventory to warnings.

    Consumes inventory counts in ranking order: if code *grows* more hot
    findings than the inventory accepts for a key, the excess stays an
    error and the gate fails — the baseline is a ceiling, not a blanket.
    """
    remaining = dict(inventory)
    out: List[PerfFinding] = []
    for pf in perf_findings:
        key = (pf.finding.rule, pf.qualname, pf.finding.path)
        if pf.hot and remaining.get(key, 0) > 0:
            remaining[key] -= 1
            demoted = dataclasses.replace(
                pf.finding,
                message=pf.finding.message + " (inventoried)",
                severity=Severity.WARNING,
            )
            out.append(
                PerfFinding(
                    finding=demoted,
                    qualname=pf.qualname,
                    share=pf.share,
                    hot=pf.hot,
                )
            )
        else:
            out.append(pf)
    return out
