"""SARIF 2.1.0 rendering for reprolint findings.

GitHub code scanning ingests SARIF and renders each result as an
inline annotation on the offending line, so `--format sarif` turns the
CI lint job's findings into PR review comments for free. The output is
deterministic: rules and results are emitted in sorted order and the
JSON is rendered with sorted keys, so two runs over the same tree are
byte-identical (the linter holds itself to its own standard).
"""

from __future__ import annotations

import json
from typing import Dict, List

from tools.reprolint.contracts import CONTRACT_RULES
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.parallel_safety import PARALLEL_RULES
from tools.reprolint.perf_lint import PERF_RULES
from tools.reprolint.rules import ALL_RULES

__all__ = ["rule_catalogue", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def rule_catalogue() -> Dict[str, str]:
    """Every registered rule id -> short name, across all passes.

    The single registry the SARIF driver, the CLI's ``--select``
    validation, and the doc-parity test all share — a rule cannot exist
    without appearing here.
    """
    catalogue: Dict[str, str] = {"RL000": "parse-error"}
    for rule_cls in ALL_RULES:
        catalogue[rule_cls.code] = rule_cls.name
    catalogue.update(CONTRACT_RULES)
    catalogue.update(PARALLEL_RULES)
    catalogue.update(PERF_RULES)
    return catalogue


def render_sarif(findings: List[Finding]) -> str:
    """One SARIF run containing every finding, as an indented string."""
    catalogue = rule_catalogue()
    rules = [
        {
            "id": code,
            "name": catalogue[code],
            "shortDescription": {"text": catalogue[code]},
            # The canonical catalogue lives in-repo, not at a registry.
            "helpUri": "docs/STATIC_ANALYSIS.md",
        }
        for code in sorted(catalogue)
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in sorted(findings)
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
