"""Inter-procedural contract checking: rules RL100-RL103.

Where RL001-RL007 look at one module at a time, this pass walks the
call graph (:mod:`tools.reprolint.callgraph`) from every function that
carries a determinism contract (``@pure``, ``@deterministic``,
``@ordered_output``, ``@seeded`` — see ``src/repro/contracts.py``) and
propagates *taint*: unseeded RNG use, wall-clock reads, and unordered
set/dict-view iteration reaching ordered output.

| Code  | Name                          | Fires when |
|-------|-------------------------------|------------|
| RL100 | contract-violation            | a contracted function's own body is impure, or it transitively calls a function declared ``@impure`` |
| RL101 | undeclared-impurity-reachable | a contracted function transitively reaches raw impurity in an *un*-declared callee — fix the callee or declare it ``@impure`` |
| RL102 | seed-parameter-not-threaded   | ``@seeded(param=p)`` names a parameter absent from the signature, or a seeded function calls another seeded function without passing its seed through |
| RL103 | contract-on-untyped-boundary  | a contract decorator sits on a function with unannotated parameters or return type |

Traversal is *compositional*: it stops at callees that carry their own
determinism contract (each is verified as its own root) and at declared
``@impure`` callees (reaching one is an RL100 on the root). Calls the
graph cannot resolve — notably attribute calls on injected instances
such as ``self.tracer`` or a ``rng`` parameter — contribute no taint;
that under-approximation is deliberate (see the callgraph module
docstring).

The in-body impurity scan reuses the RL001/RL005 call tables and the
RL002 consumer walk, with the set-typed inference *extended* for
contract mode: parameters annotated ``Set``/``FrozenSet`` are
set-typed, tuple unpacking propagates elementwise, and a list built by
comprehension over a set inherits the set's (hash-randomized) order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from tools.reprolint.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    _own_calls,
    dotted_name,
)
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.rules.rl001_rng import (
    _GLOBAL_RANDOM_FUNCS,
    _SEEDABLE_CONSTRUCTORS,
)
from tools.reprolint.rules.rl002_set_order import (
    _is_dict_view,
    _is_set_expr,
    _iter_scope_statements,
    _walk_to_consumer,
)
from tools.reprolint.rules.base import attach_parents
from tools.reprolint.rules.rl005_wallclock import _CLOCK_CALLS

__all__ = [
    "CONTRACT_RULES",
    "PARALLEL_KINDS",
    "PERF_KINDS",
    "Contract",
    "check_contracts",
    "contracts_for",
]

#: Rule catalogue entries for the inter-procedural pass (code -> name).
CONTRACT_RULES: Dict[str, str] = {
    "RL100": "contract-violation",
    "RL101": "undeclared-impurity-reachable",
    "RL102": "seed-parameter-not-threaded",
    "RL103": "contract-on-untyped-boundary",
}

_DETERMINISM_KINDS = ("pure", "deterministic", "ordered_output", "seeded")

#: Parallel-safety contract kinds (``tools/reprolint/parallel_safety.py``).
#: Recognized by :func:`contracts_for` but *not* determinism contracts —
#: they never make a function an RL100-RL103 root.
PARALLEL_KINDS = (
    "picklable_work",
    "fork_safe",
    "commutative_merge",
    "shared_readonly",
)

#: Performance contract kinds (``tools/reprolint/perf_lint.py``). Cost
#: markers only: they make no determinism or parallel-safety claim, so
#: the RL100 and RL200 passes treat a function carrying *only* these as
#: uncontracted (traversal does not stop at them).
PERF_KINDS = ("hot_path", "batch_kernel")

_HazardFn = Callable[[ast.AST], bool]


@dataclass
class Contract:
    """One recognized contract decorator on a function."""

    kind: str  # pure | deterministic | ordered_output | seeded | impure
    param: Optional[str]  # seed parameter name, for @seeded
    node: ast.expr  # the decorator expression


@dataclass
class _Impurity:
    """A raw impurity site inside one function body."""

    kind: str  # rng | clock | unordered
    node: ast.AST
    description: str


def contracts_for(
    module: ModuleInfo, func_node: ast.AST
) -> List[Contract]:
    """Contracts declared on ``func_node``, resolved via module imports.

    A decorator counts when its dotted origin lives in a module whose
    last component is ``contracts`` — ``repro.contracts.pure`` in real
    code, plain ``contracts.pure`` in fixtures.
    """
    out: List[Contract] = []
    for dec in getattr(func_node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(module.aliases, target)
        if dotted is None:
            continue
        origin, _, name = dotted.rpartition(".")
        if not (origin == "contracts" or origin.endswith(".contracts")):
            continue
        if name in ("pure", "deterministic", "ordered_output") or (
            name in PARALLEL_KINDS or name in PERF_KINDS
        ):
            out.append(Contract(name, None, dec))
        elif name == "seeded":
            param = "rng"
            if isinstance(dec, ast.Call):
                if dec.args and isinstance(dec.args[0], ast.Constant):
                    if isinstance(dec.args[0].value, str):
                        param = dec.args[0].value
                for keyword in dec.keywords:
                    if keyword.arg == "param" and isinstance(
                        keyword.value, ast.Constant
                    ):
                        if isinstance(keyword.value.value, str):
                            param = keyword.value.value
            out.append(Contract("seeded", param, dec))
        elif name == "impure":
            out.append(Contract("impure", None, dec))
    return out


def check_contracts(graph: CallGraph) -> List[Finding]:
    """Verify every contracted function in the graph; sorted findings."""
    checker = _Checker(graph)
    return checker.run()


class _Checker:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.contracts: Dict[str, List[Contract]] = {}
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            module = graph.modules[info.module]
            declared = contracts_for(module, info.node)
            if declared:
                self.contracts[qualname] = declared
        # module name -> function qualname -> unordered-iteration sites
        self._unordered: Dict[str, Dict[str, List[ast.AST]]] = {}
        self._impurities: Dict[str, List[_Impurity]] = {}

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(self.contracts):
            declared = self.contracts[qualname]
            determinism = [
                c for c in declared if c.kind in _DETERMINISM_KINDS
            ]
            if not determinism:
                continue
            info = self.graph.functions[qualname]
            label = determinism[0].kind
            findings.extend(self._check_boundary(info, label, determinism))
            findings.extend(self._check_seed_signature(info, determinism))
            findings.extend(self._check_taint(info, label))
            findings.extend(self._check_seed_threading(info, determinism))
        return sorted(findings)

    # -- RL103 --------------------------------------------------------------

    def _check_boundary(
        self, info: FunctionInfo, label: str, determinism: List[Contract]
    ) -> List[Finding]:
        node = info.node
        args = node.args  # type: ignore[attr-defined]
        ordered_args = [*args.posonlyargs, *args.args]
        missing: List[str] = []
        for index, arg in enumerate(ordered_args):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if node.returns is None:  # type: ignore[attr-defined]
            missing.append("return")
        if not missing:
            return []
        return [
            _finding(
                info,
                info.node,
                "RL103",
                f"@{label} on `{info.name}` sits on an untyped boundary; "
                f"missing annotation(s): {', '.join(missing)} — contracts "
                "lean on the type system at unresolved call sites, so the "
                "boundary must be fully typed",
            )
        ]

    # -- RL102 --------------------------------------------------------------

    def _check_seed_signature(
        self, info: FunctionInfo, determinism: List[Contract]
    ) -> List[Finding]:
        findings: List[Finding] = []
        arg_names = _argument_names(info.node)
        for contract in determinism:
            if contract.kind != "seeded" or contract.param is None:
                continue
            if contract.param not in arg_names:
                findings.append(
                    _finding(
                        info,
                        info.node,
                        "RL102",
                        f'@seeded(param="{contract.param}") on `{info.name}` '
                        "names a parameter that is not in its signature",
                    )
                )
        return findings

    def _check_seed_threading(
        self, info: FunctionInfo, determinism: List[Contract]
    ) -> List[Finding]:
        seeds = [c for c in determinism if c.kind == "seeded" and c.param]
        if not seeds:
            return []
        caller_param = seeds[0].param or "rng"
        if caller_param not in _argument_names(info.node):
            return []  # already an RL102 from the signature check
        findings: List[Finding] = []
        for callee, site in self.graph.callees(info.qualname):
            if not isinstance(site, ast.Call):
                continue  # nested-def edges have no call arguments
            callee_seeds = [
                c
                for c in self.contracts.get(callee, [])
                if c.kind == "seeded" and c.param
            ]
            if not callee_seeds:
                continue
            callee_param = callee_seeds[0].param or "rng"
            if _threads_seed(site, caller_param, callee_param):
                continue
            callee_info = self.graph.functions[callee]
            findings.append(
                _finding(
                    info,
                    site,
                    "RL102",
                    f"`{info.name}` (@seeded \"{caller_param}\") calls "
                    f"@seeded `{callee_info.name}` without threading a "
                    f"seed — pass it through, e.g. "
                    f"`{callee_param}={caller_param}`",
                )
            )
        return findings

    # -- RL100 / RL101 taint ------------------------------------------------

    def _check_taint(self, info: FunctionInfo, label: str) -> List[Finding]:
        findings: List[Finding] = []
        for impurity in self._impurities_of(info.qualname):
            findings.append(
                _finding(
                    info,
                    impurity.node,
                    "RL100",
                    f"`{info.name}` declares @{label} but its body "
                    f"{impurity.description}",
                )
            )
        reported: Set[Tuple[str, ...]] = set()
        visited: Set[str] = {info.qualname}
        queue: List[str] = [info.qualname]
        while queue:
            current = queue.pop(0)
            for callee, _site in self.graph.callees(current):
                callee_contracts = self.contracts.get(callee, [])
                if any(c.kind == "impure" for c in callee_contracts):
                    key = ("impure", callee)
                    if key not in reported:
                        reported.add(key)
                        findings.append(
                            _finding(
                                info,
                                info.node,
                                "RL100",
                                f"`{info.name}` declares @{label} but "
                                f"transitively calls declared-impure "
                                f"`{callee}`",
                            )
                        )
                    continue
                if any(
                    c.kind in _DETERMINISM_KINDS for c in callee_contracts
                ):
                    continue  # a contract boundary, verified as its own root
                if callee in visited:
                    continue
                visited.add(callee)
                callee_info = self.graph.functions.get(callee)
                if callee_info is None:
                    continue
                for impurity in self._impurities_of(callee):
                    key = (
                        "raw",
                        callee,
                        str(getattr(impurity.node, "lineno", 0)),
                        impurity.kind,
                    )
                    if key in reported:
                        continue
                    reported.add(key)
                    findings.append(
                        _finding(
                            info,
                            info.node,
                            "RL101",
                            f"`{info.name}` declares @{label} but "
                            f"transitively reaches undeclared impurity: "
                            f"`{callee}` ({callee_info.path}:"
                            f"{getattr(impurity.node, 'lineno', '?')}) "
                            f"{impurity.description} — fix the callee or "
                            "annotate it with @impure",
                        )
                    )
                queue.append(callee)
        return findings

    # -- impurity scanning --------------------------------------------------

    def _impurities_of(self, qualname: str) -> List[_Impurity]:
        cached = self._impurities.get(qualname)
        if cached is not None:
            return cached
        info = self.graph.functions[qualname]
        module = self.graph.modules[info.module]
        impurities = _rng_clock_impurities(info, module)
        for site in self._unordered_sites(module).get(qualname, []):
            impurities.append(
                _Impurity(
                    "unordered",
                    site,
                    "lets unordered set/dict-view iteration reach ordered "
                    f"output (line {getattr(site, 'lineno', '?')})",
                )
            )
        impurities.sort(key=lambda imp: getattr(imp.node, "lineno", 0))
        self._impurities[qualname] = impurities
        return impurities

    def _unordered_sites(
        self, module: ModuleInfo
    ) -> Dict[str, List[ast.AST]]:
        cached = self._unordered.get(module.name)
        if cached is not None:
            return cached
        by_function: Dict[str, List[ast.AST]] = {}
        parents = attach_parents(module.tree)
        node_to_qual = {
            self.graph.functions[q].node: q
            for q in self.graph.functions
            if self.graph.functions[q].module == module.name
        }
        for site in _strict_unordered_sites(module.tree, parents):
            owner: Optional[ast.AST] = parents.get(site)
            while owner is not None and owner not in node_to_qual:
                owner = parents.get(owner)
            if owner is None:
                continue  # module-level code cannot carry a contract
            by_function.setdefault(node_to_qual[owner], []).append(site)
        self._unordered[module.name] = by_function
        return by_function


def _finding(
    info: FunctionInfo, node: ast.AST, rule: str, message: str
) -> Finding:
    return Finding(
        path=info.path,
        line=getattr(node, "lineno", info.line),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
        severity=Severity.ERROR,
    )


def _argument_names(func_node: ast.AST) -> List[str]:
    args = func_node.args  # type: ignore[attr-defined]
    names = [
        a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    ]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _threads_seed(
    call: ast.Call, caller_param: str, callee_param: str
) -> bool:
    """Does the call pass the caller's seed on (or target the callee's)?"""
    values: List[ast.expr] = list(call.args)
    for keyword in call.keywords:
        if keyword.arg == callee_param:
            return True
        if keyword.arg is None:
            return True  # **kwargs forwarding — give it the benefit
        values.append(keyword.value)
    for value in values:
        for node in ast.walk(value):
            if isinstance(node, ast.Name) and node.id == caller_param:
                return True
    return False


def _rng_clock_impurities(
    info: FunctionInfo, module: ModuleInfo
) -> List[_Impurity]:
    """RNG / wall-clock sites in one function body (nested defs excluded).

    Reuses the RL001/RL005 call tables but ignores RL005's
    ``wallclock-allowed-paths``: at the contract layer the only clock
    exemption is an explicit ``@impure`` declaration.
    """
    out: List[_Impurity] = []
    for call in _own_calls(info.node):
        dotted = dotted_name(module.aliases, call.func)
        if dotted is None:
            continue
        if dotted in _SEEDABLE_CONSTRUCTORS:
            if not call.args and not call.keywords:
                out.append(
                    _Impurity(
                        "rng", call, f"constructs `{dotted}()` without a seed"
                    )
                )
            continue
        origin, _, name = dotted.rpartition(".")
        if origin == "random" and name in _GLOBAL_RANDOM_FUNCS:
            out.append(
                _Impurity(
                    "rng",
                    call,
                    f"calls `random.{name}()` on the process-global RNG",
                )
            )
        elif origin == "numpy.random" and name != "default_rng":
            out.append(
                _Impurity(
                    "rng",
                    call,
                    f"calls `numpy.random.{name}()` on the legacy global "
                    "RandomState",
                )
            )
        elif dotted in _CLOCK_CALLS:
            out.append(
                _Impurity("clock", call, f"reads the clock via `{dotted}()`")
            )
    return out


# -- strict unordered-iteration inference -------------------------------------

_SET_ANNOTATION_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def _is_set_annotation(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Attribute):  # typing.Set, typing.FrozenSet
        return node.attr in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Subscript):  # Set[str], FrozenSet[Tuple[...]]
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _is_set_annotation(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


def _strict_unordered_sites(
    tree: ast.Module, parents: Dict[ast.AST, ast.AST]
) -> List[ast.AST]:
    """RL002-style unordered sites under contract-mode inference."""
    hazard_vars, laundered = _collect_hazard_variables(tree, parents)
    reported: Set[Tuple[int, int]] = set()
    sites: List[ast.AST] = []

    def report(flagged: ast.AST) -> None:
        key = (flagged.lineno, flagged.col_offset)
        if key not in reported:
            reported.add(key)
            sites.append(flagged)

    for node in ast.walk(tree):
        weak = False
        if _is_set_expr(node, hazard_vars, parents):
            parent = parents.get(node)
            if parent is not None and _is_set_expr(
                parent, hazard_vars, parents
            ):
                continue
        elif _is_dict_view(node):
            weak = True
        else:
            continue
        flagged = _walk_to_consumer(node, parents, weak=weak)
        if flagged is not None:
            report(flagged)

    # In contract mode a `return` *is* ordered output. Returning a set is
    # fine (the consumer still sees an unordered type and is checked at
    # its own iteration sites); returning a list whose order was
    # *laundered* from a set — built by comprehension over one — is not.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Name):
            scope = _strict_scope_of(value, parents)
            while scope is not None:
                if (id(scope), value.id) in laundered:
                    report(value)
                    break
                scope = _strict_scope_of(scope, parents)
        elif isinstance(value, ast.ListComp) and value.generators:
            if _is_set_expr(value.generators[0].iter, hazard_vars, parents):
                report(value)
    return sorted(sites, key=lambda n: (n.lineno, n.col_offset))


def _strict_scope_of(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Optional[ast.AST]:
    current = parents.get(node)
    while current is not None:
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module),
        ):
            return current
        current = parents.get(current)
    return None


def _collect_hazard_variables(
    tree: ast.Module, parents: Dict[ast.AST, ast.AST]
) -> Tuple[Dict[Tuple[int, str], bool], Set[Tuple[int, str]]]:
    """Extended set-typed inference for contract mode.

    Returns ``(hazard_vars, laundered)``: ``hazard_vars`` is the RL002
    ``(scope-id, name) -> bool`` map extended three ways —
    ``Set``/``FrozenSet``-annotated parameters are set-typed, tuple
    unpacking propagates elementwise (through either branch of a
    conditional expression), and a name assigned a list comprehension
    over a set-typed iterable inherits the hazard (the list's *order*
    is still the set's). ``laundered`` is the subset whose value is such
    an order-laundered *list* rather than an actual set — the kind that
    must not escape through ``return``.

    A name is hazardous only if *every* assignment to it is; in-place
    ``name.sort()`` counts as a clearing assignment, so both
    ``items = sorted(items)`` and ``items.sort()`` remove the taint.
    """
    scopes: List[Tuple[ast.AST, List[ast.stmt]]] = [(tree, tree.body)]
    param_seeds: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node, node.body))
            args = node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if _is_set_annotation(arg.annotation):
                    param_seeds.append((id(node), arg.arg))

    current: Dict[Tuple[int, str], bool] = {}
    laundered: Set[Tuple[int, str]] = set()
    # Hazard of a value can depend on other variables' verdicts; a few
    # rounds reach a fixpoint for any realistic chain length.
    for _round in range(3):
        # verdict lists: (hazard, laundered-into-ordered-list) per write
        verdicts: Dict[Tuple[int, str], List[Tuple[bool, bool]]] = {}

        def value_verdict(value: ast.AST) -> Tuple[bool, bool]:
            if _is_set_expr(value, current, parents):
                return (True, False)
            if isinstance(value, ast.ListComp) and value.generators:
                hazard = _is_set_expr(
                    value.generators[0].iter, current, parents
                )
                return (hazard, hazard)
            return (False, False)

        for scope, body in scopes:
            for stmt in _iter_scope_statements(body):
                if _is_inplace_sort(stmt):
                    call = stmt.value  # type: ignore[attr-defined]
                    name = call.func.value.id
                    verdicts.setdefault((id(scope), name), []).append(
                        (False, False)
                    )
                    continue
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        key = (id(scope), target.id)
                        verdicts.setdefault(key, []).append(
                            value_verdict(value)
                        )
                    elif isinstance(target, ast.Tuple):
                        for name, element_hazard in _unpacked_elements(
                            target, value, lambda v: value_verdict(v)[0]
                        ):
                            key = (id(scope), name)
                            verdicts.setdefault(key, []).append(
                                (element_hazard, False)
                            )
        for key in param_seeds:
            # The parameter arrives set-typed; reassignments may clear it.
            verdicts.setdefault(key, []).insert(0, (True, False))
        current = {
            key: all(hazard for hazard, _ in values)
            for key, values in verdicts.items()
            if values
        }
        laundered = {
            key
            for key, values in verdicts.items()
            if values
            and all(hazard for hazard, _ in values)
            and any(is_laundered for _, is_laundered in values)
        }
    return current, laundered


def _is_inplace_sort(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "sort"
        and isinstance(stmt.value.func.value, ast.Name)
    )


def _unpacked_elements(
    target: ast.Tuple,
    value: ast.expr,
    value_hazard: "_HazardFn",
) -> List[Tuple[str, bool]]:
    """(name, hazard) pairs for ``a, b = <tuple-or-conditional-tuple>``."""
    branches: List[ast.expr] = []
    if isinstance(value, ast.Tuple):
        branches = [value]
    elif isinstance(value, ast.IfExp):
        branches = [value.body, value.orelse]
    tuple_branches = [
        branch
        for branch in branches
        if isinstance(branch, ast.Tuple)
        and len(branch.elts) == len(target.elts)
    ]
    out: List[Tuple[str, bool]] = []
    for index, element in enumerate(target.elts):
        if not isinstance(element, ast.Name):
            continue
        if tuple_branches:
            hazard = any(
                value_hazard(branch.elts[index]) for branch in tuple_branches
            )
        else:
            hazard = False  # unknown unpack source: stay conservative
        out.append((element.id, hazard))
    return out


