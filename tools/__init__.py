"""Developer tooling that ships with the repository (not installed)."""
